package mlkit

// Transformer is any fitted feature transformation (scalers, Nyström maps,
// correlation filters all satisfy it).
type Transformer interface {
	Fit(X [][]float64) error
	Transform(X [][]float64) [][]float64
}

// Pipeline chains feature transformers in front of a classifier, fitting
// each stage on the output of the previous one.
type Pipeline struct {
	Steps []Transformer
	Model Classifier
}

// Fit fits every transformer then the model.
func (p *Pipeline) Fit(X [][]float64, y []int) error {
	cur := X
	for _, s := range p.Steps {
		if err := s.Fit(cur); err != nil {
			return err
		}
		cur = s.Transform(cur)
	}
	return p.Model.Fit(cur, y)
}

// Predict applies the fitted transformers then the model.
func (p *Pipeline) Predict(X [][]float64) []int {
	return p.Model.Predict(p.transform(X))
}

// Proba applies the transformers and delegates when supported.
func (p *Pipeline) Proba(X [][]float64) []float64 {
	cur := p.transform(X)
	if pc, ok := p.Model.(ProbClassifier); ok {
		return pc.Proba(cur)
	}
	pred := p.Model.Predict(cur)
	out := make([]float64, len(pred))
	for i, v := range pred {
		out[i] = float64(v)
	}
	return out
}

func (p *Pipeline) transform(X [][]float64) [][]float64 {
	cur := X
	for _, s := range p.Steps {
		cur = s.Transform(cur)
	}
	return cur
}

// DetectorPipeline chains transformers in front of an unsupervised
// detector (e.g. MinMax → Nyström → OCSVM, the A09 construction).
type DetectorPipeline struct {
	Steps    []Transformer
	Detector Detector
}

// Fit fits every transformer then the detector.
func (p *DetectorPipeline) Fit(X [][]float64) error {
	cur := X
	for _, s := range p.Steps {
		if err := s.Fit(cur); err != nil {
			return err
		}
		cur = s.Transform(cur)
	}
	return p.Detector.Fit(cur)
}

// Score applies the fitted transformers then scores.
func (p *DetectorPipeline) Score(X [][]float64) []float64 {
	cur := X
	for _, s := range p.Steps {
		cur = s.Transform(cur)
	}
	return p.Detector.Score(cur)
}
