package linalg

import "fmt"

// Blocking parameters for the matrix product kernels. blockJ rows of the
// transposed operand (×8 bytes×Cols) are kept hot in L1/L2 while a strip
// of blockI output rows is computed against them.
const (
	blockI = 8
	blockJ = 64
)

// Dot returns the inner product of two equal-length vectors using four
// independent accumulators, breaking the FP-add dependency chain that
// limits a naive s += a[i]*b[i] loop to one add per ~4 cycles. The
// accumulator combine order is fixed, so results are deterministic.
func Dot(a, b []float64) float64 {
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha*x element-wise. Each y[j] sees exactly one
// fused update, so accumulation order across repeated Axpy calls is the
// caller's loop order — deterministic by construction.
func Axpy(alpha float64, x, y []float64) {
	y = y[:len(x)] // bounds-check elimination hint
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// MatMulT computes C = A·Bᵀ where A is n×d and B is m×d, writing the
// n×m result into C (which must be pre-shaped). This is the workhorse
// kernel: B's rows are scanned sequentially (no transposed stride), the
// loop is cache-blocked, and output rows are split across the worker
// pool. Each C[i,j] is one Dot, so results are bit-identical for any
// worker count or block size.
func MatMulT(a, b, c *Dense) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMulT shape mismatch: %dx%d · (%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	ParallelRows(a.Rows, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += blockI {
			i1 := i0 + blockI
			if i1 > hi {
				i1 = hi
			}
			for j0 := 0; j0 < b.Rows; j0 += blockJ {
				j1 := j0 + blockJ
				if j1 > b.Rows {
					j1 = b.Rows
				}
				for i := i0; i < i1; i++ {
					ai := a.Row(i)
					ci := c.Row(i)
					for j := j0; j < j1; j++ {
						ci[j] = Dot(ai, b.Row(j))
					}
				}
			}
		}
	})
}

// MatMul computes C = A·B where A is n×d and B is d×m, writing into the
// pre-shaped n×m C. It runs in saxpy form (C[i,:] += A[i,k]·B[k,:]) so
// B is read row-sequentially; rows of C are split across workers and
// each accumulates in fixed k order — deterministic for any worker
// count.
func MatMul(a, b, c *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch: %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	ParallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for j := range ci {
				ci[j] = 0
			}
			ai := a.Row(i)
			for k, av := range ai {
				if av != 0 {
					Axpy(av, b.Row(k), ci)
				}
			}
		}
	})
}

// AtMulAdd accumulates C += Aᵀ·B where A is n×p and B is n×q, with C
// pre-shaped p×q. It is the gradient kernel (weight gradient = deltasᵀ ·
// activations) and runs serially in sample order: parallelizing it would
// need per-shard partial matrices, and the surrounding training loops
// parallelize over the batch dimension elsewhere.
func AtMulAdd(a, b, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: AtMulAdd shape mismatch: (%dx%d)ᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for k := 0; k < a.Rows; k++ {
		ak := a.Row(k)
		bk := b.Row(k)
		for o, av := range ak {
			if av != 0 {
				Axpy(av, bk, c.Row(o))
			}
		}
	}
}

// AddBiasRows adds the bias vector to every row of C.
func AddBiasRows(c *Dense, bias []float64) {
	if len(bias) != c.Cols {
		panic(fmt.Sprintf("linalg: AddBiasRows: bias len %d, cols %d", len(bias), c.Cols))
	}
	ParallelRows(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
	})
}
