package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride, when > 0, fixes the worker count (tests use it to
// prove bit-identical results across pool sizes). 0 means GOMAXPROCS.
var workerOverride atomic.Int32

// SetWorkers overrides the number of goroutines ParallelRows fans out
// to; n <= 0 restores the GOMAXPROCS default. It returns the previous
// override so tests can defer-restore.
func SetWorkers(n int) int {
	prev := int(workerOverride.Load())
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int32(n))
	return prev
}

// Workers reports the current fan-out width.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelThreshold is the row count below which ParallelRows stays
// serial — goroutine handoff costs more than the work it would split.
const parallelThreshold = 64

// ParallelRows splits [0, n) into one contiguous range per worker and
// runs fn on each concurrently, blocking until all complete. fn must
// write only to row-indexed state inside its range; under that contract
// the result is bit-identical for any worker count, because every row is
// produced by the same serial code regardless of how ranges are drawn.
//
// Reductions must NOT accumulate across fn calls in completion order —
// use SumBlocks (fixed shards, fixed combine order) instead.
func ParallelRows(n int, fn func(lo, hi int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 || n < parallelThreshold {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sumBlockSize is the fixed shard width for parallel reductions. It is a
// constant — never derived from the worker count — so the partials and
// their combine order are identical no matter how the shards were
// scheduled.
const sumBlockSize = 1024

// SumBlocks reduces fn over [0, n) deterministically: the range is cut
// into fixed-size shards, fn produces one partial per shard (shards may
// run on any worker), and the partials are summed serially in shard
// order. The result is bit-identical to a serial run for any worker
// count.
func SumBlocks(n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nb := (n + sumBlockSize - 1) / sumBlockSize
	if nb == 1 {
		return fn(0, n)
	}
	partials := make([]float64, nb)
	ParallelRows(nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * sumBlockSize
			hi := lo + sumBlockSize
			if hi > n {
				hi = n
			}
			partials[b] = fn(lo, hi)
		}
	})
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}
