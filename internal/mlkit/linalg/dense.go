// Package linalg provides the flat dense-matrix kernels behind mlkit's
// hot numeric paths: a row-major Dense matrix backed by one allocation,
// cache-blocked matrix products with multi-accumulator inner loops, and
// a deterministic row-parallel work splitter.
//
// Determinism rules: every parallel helper produces bit-identical
// results for any worker count. Disjoint-row writes are deterministic by
// construction (each row is computed by exactly one goroutine running
// the same serial code); reductions must go through fixed-shard partials
// combined in shard order (see SumBlocks) rather than accumulating in
// goroutine-completion order.
package linalg

import "fmt"

// Dense is a row-major matrix over a single flat backing slice:
// element (i, j) lives at Data[i*Cols+j]. The flat layout keeps row
// scans sequential in memory and removes the per-row pointer chase and
// allocation of [][]float64.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed r×c matrix backed by one allocation.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows copies a [][]float64 into a freshly allocated Dense.
// All rows must have the same length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return &Dense{}
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: FromRows: row %d has %d cols, want %d", i, len(row), m.Cols))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Row returns the i-th row as a slice view into the backing array.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// RowViews returns per-row slice views sharing the backing array — the
// [][]float64 shape mlkit models consume, at the cost of one header
// allocation instead of one allocation per row.
func (m *Dense) RowViews() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// RowRange returns the sub-matrix of rows [lo, hi) as a view sharing
// the backing array.
func (m *Dense) RowRange(lo, hi int) *Dense {
	return &Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Zero clears the matrix in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// Reshape reuses m's backing array for an r×c matrix, growing it when
// needed. Contents are unspecified after a growing reshape; callers that
// need zeros should call Zero.
func (m *Dense) Reshape(r, c int) *Dense {
	n := r * c
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = r, c
	return m
}

// SqNorms fills dst (allocating when nil or short) with the squared
// Euclidean norm of each row and returns it.
func (m *Dense) SqNorms(dst []float64) []float64 {
	if cap(dst) < m.Rows {
		dst = make([]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s0, s1 float64
		j := 0
		for ; j+1 < len(row); j += 2 {
			s0 += row[j] * row[j]
			s1 += row[j+1] * row[j+1]
		}
		if j < len(row) {
			s0 += row[j] * row[j]
		}
		dst[i] = s0 + s1
	}
	return dst
}
