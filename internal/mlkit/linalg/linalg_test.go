package linalg

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator for test fixtures.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / (1 << 53)
}

func randDense(r, c int, seed uint64) *Dense {
	g := lcg(seed)
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = g.next()*2 - 1
	}
	return m
}

func naiveMatMulT(a, b *Dense) *Dense {
	c := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMatMulTMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {65, 17, 130}, {8, 64, 8}, {100, 1, 3}} {
		n, d, m := dims[0], dims[1], dims[2]
		a := randDense(n, d, uint64(n*1000+d))
		b := randDense(m, d, uint64(m*1000+d+1))
		c := NewDense(n, m)
		MatMulT(a, b, c)
		want := naiveMatMulT(a, b)
		for i := range c.Data {
			if math.Abs(c.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("dims %v: C[%d] = %v, want %v", dims, i, c.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	a := randDense(33, 21, 3)
	b := randDense(21, 45, 4)
	c := NewDense(33, 45)
	MatMul(a, b, c)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-s) > 1e-12 {
				t.Fatalf("C[%d,%d] = %v, want %v", i, j, c.At(i, j), s)
			}
		}
	}
}

func TestAtMulAddMatchesNaive(t *testing.T) {
	a := randDense(29, 7, 5)
	b := randDense(29, 11, 6)
	c := NewDense(7, 11)
	AtMulAdd(a, b, c)
	AtMulAdd(a, b, c) // accumulate twice
	for o := 0; o < 7; o++ {
		for j := 0; j < 11; j++ {
			var s float64
			for k := 0; k < 29; k++ {
				s += a.At(k, o) * b.At(k, j)
			}
			if math.Abs(c.At(o, j)-2*s) > 1e-12 {
				t.Fatalf("C[%d,%d] = %v, want %v", o, j, c.At(o, j), 2*s)
			}
		}
	}
}

func TestDotAndAxpyTails(t *testing.T) {
	for n := 0; n < 9; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := range a {
			a[i] = float64(i + 1)
			b[i] = float64(2*i - 3)
			want += a[i] * b[i]
		}
		if got := Dot(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Dot len %d = %v, want %v", n, got, want)
		}
		y := make([]float64, n)
		Axpy(0.5, a, y)
		for i := range y {
			if y[i] != 0.5*a[i] {
				t.Fatalf("Axpy len %d: y[%d] = %v", n, i, y[i])
			}
		}
	}
}

// TestMatMulTDeterministicAcrossWorkers is the package-level determinism
// contract: the same product, bit-identical, for 1, 2 and 8 workers.
func TestMatMulTDeterministicAcrossWorkers(t *testing.T) {
	a := randDense(257, 19, 7)
	b := randDense(131, 19, 8)
	var ref *Dense
	for _, w := range []int{1, 2, 8} {
		prev := SetWorkers(w)
		c := NewDense(a.Rows, b.Rows)
		MatMulT(a, b, c)
		SetWorkers(prev)
		if ref == nil {
			ref = c
			continue
		}
		for i := range c.Data {
			if c.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: C[%d] = %b, want %b (not bit-identical)", w, i, c.Data[i], ref.Data[i])
			}
		}
	}
}

func TestSumBlocksDeterministicAcrossWorkers(t *testing.T) {
	g := lcg(9)
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = g.next() - 0.5
	}
	sum := func(lo, hi int) float64 {
		var s float64
		for _, v := range xs[lo:hi] {
			s += v
		}
		return s
	}
	var ref float64
	for i, w := range []int{1, 2, 8} {
		prev := SetWorkers(w)
		s := SumBlocks(len(xs), sum)
		SetWorkers(prev)
		if i == 0 {
			ref = s
		} else if s != ref {
			t.Fatalf("workers=%d: sum = %b, want %b", w, s, ref)
		}
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000} {
		for _, w := range []int{1, 3, 8} {
			prev := SetWorkers(w)
			seen := make([]int32, n)
			ParallelRows(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			SetWorkers(prev)
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: row %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestDenseHelpers(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatal("FromRows wrong")
	}
	views := m.RowViews()
	views[1][0] = 30
	if m.At(1, 0) != 30 {
		t.Fatal("RowViews must alias the backing array")
	}
	norms := m.SqNorms(nil)
	if norms[0] != 5 || norms[2] != 25+36 {
		t.Fatalf("SqNorms = %v", norms)
	}
	m.Reshape(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatal("Reshape wrong")
	}
	cl := m.Clone()
	cl.Data[0] = -1
	if m.Data[0] == -1 {
		t.Fatal("Clone must not alias")
	}
}
