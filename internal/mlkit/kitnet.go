package mlkit

import (
	"math"
	"sort"
)

// KitNET is the anomaly detector at the heart of Kitsune (Mirsky et al.,
// NDSS'18; algorithm A06 in Lumen): an ensemble of small autoencoders, each
// responsible for a cluster of correlated features, whose reconstruction
// RMSEs feed an output autoencoder. The feature map is learned by
// agglomerative clustering on feature-correlation distance, capped at
// MaxAESize inputs per autoencoder.
type KitNET struct {
	// MaxAESize caps features per ensemble autoencoder; 0 means 10.
	MaxAESize int
	// GracePeriod is the number of leading rows used only to learn the
	// feature map and normalization before training begins; 0 means
	// min(len(X)/10, 1000) at Fit.
	GracePeriod int
	// Epochs over the training data for batch Fit; 0 means 10.
	Epochs int
	// LR for all autoencoders; 0 means 0.1.
	LR float64
	// Seed drives initialization.
	Seed int64

	clusters [][]int
	ensemble []*Autoencoder
	output   *Autoencoder
	norm     *MinMaxScaler
	obs      FitObserver
}

// SetFitObserver attaches a per-epoch progress observer; the reported
// loss is the epoch's mean output-autoencoder RMSE.
func (k *KitNET) SetFitObserver(o FitObserver) { k.obs = o }

// Fit learns the feature map from (a prefix of) X, then trains the ensemble
// and output layers on min-max–scaled data.
func (k *KitNET) Fit(X [][]float64) error {
	if _, err := checkXY(X, nil); err != nil {
		return err
	}
	grace := k.GracePeriod
	if grace == 0 {
		grace = len(X) / 10
		if grace > 1000 {
			grace = 1000
		}
	}
	if grace < 2 {
		grace = 2
	}
	if grace > len(X) {
		grace = len(X)
	}
	k.clusters = clusterFeatures(X[:grace], k.maxAE())
	k.norm = &MinMaxScaler{}
	if err := k.norm.Fit(X); err != nil {
		return err
	}
	Xs := k.norm.Transform(X)

	lr := k.LR
	if lr == 0 {
		lr = 0.1
	}
	epochs := k.Epochs
	if epochs == 0 {
		epochs = 10
	}
	k.ensemble = make([]*Autoencoder, len(k.clusters))
	for c, feats := range k.clusters {
		b := len(feats) * 3 / 4
		if b < 1 {
			b = 1
		}
		k.ensemble[c] = &Autoencoder{Hidden: []int{b}, LR: lr, Seed: k.Seed + int64(c)}
	}
	ob := len(k.clusters) * 3 / 4
	if ob < 1 {
		ob = 1
	}
	k.output = &Autoencoder{Hidden: []int{ob}, LR: lr, Seed: k.Seed + 7919}

	// Training stays row-by-row online SGD — Kitsune trains packet by
	// packet, and the detectors that threshold on training-score
	// distributions depend on that convergence behaviour. The flat
	// kernels still speed this path up (scratch reuse, ILP dot products);
	// the batched GEMM form is reserved for Score, where it changes
	// nothing but throughput.
	sub := make([]float64, 0, k.maxAE())
	tail := make([]float64, len(k.clusters))
	for e := 0; e < epochs; e++ {
		var rmseSum float64
		for _, row := range Xs {
			for c, feats := range k.clusters {
				sub = sub[:0]
				for _, f := range feats {
					sub = append(sub, row[f])
				}
				tail[c] = clamp01(k.ensemble[c].TrainOne(sub))
			}
			rmseSum += k.output.TrainOne(tail)
		}
		if k.obs != nil {
			k.obs.FitEpoch("kitnet", e, rmseSum/float64(len(Xs)))
		}
	}
	return nil
}

func (k *KitNET) maxAE() int {
	if k.MaxAESize == 0 {
		return 10
	}
	return k.MaxAESize
}

// Score returns the output autoencoder's RMSE per row (higher = more
// anomalous). Each ensemble member scores its feature subset over the
// whole frame in batched GEMM passes; the output AE then scores the
// assembled tail matrix the same way.
func (k *KitNET) Score(X [][]float64) []float64 {
	Xs := k.norm.Transform(X)
	tails := make([][]float64, len(Xs))
	for i := range tails {
		tails[i] = make([]float64, len(k.clusters))
	}
	sub := make([][]float64, len(Xs))
	for c, feats := range k.clusters {
		for i, row := range Xs {
			dst := make([]float64, len(feats))
			for j, f := range feats {
				dst[j] = row[f]
			}
			sub[i] = dst
		}
		for i, s := range k.ensemble[c].Score(sub) {
			tails[i][c] = clamp01(s)
		}
	}
	return k.output.Score(tails)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clusterFeatures groups feature indices by complete-linkage agglomerative
// clustering on correlation distance 1-|r|, splitting any cluster larger
// than maxSize.
func clusterFeatures(X [][]float64, maxSize int) [][]int {
	d := len(X[0])
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(X))
		for i, row := range X {
			col[i] = row[j]
		}
		cols[j] = col
	}
	dist := make([][]float64, d)
	for i := range dist {
		dist[i] = make([]float64, d)
		for j := range dist[i] {
			if i == j {
				continue
			}
			dist[i][j] = 1 - math.Abs(PearsonCorr(cols[i], cols[j]))
		}
	}
	clusters := make([][]int, d)
	for j := 0; j < d; j++ {
		clusters[j] = []int{j}
	}
	// Complete-linkage merge until no pair both fits maxSize and has
	// distance < 1 (i.e. some correlation).
	for {
		bestI, bestJ, bestD := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if len(clusters[i])+len(clusters[j]) > maxSize {
					continue
				}
				var dd float64
				for _, a := range clusters[i] {
					for _, b := range clusters[j] {
						if dist[a][b] > dd {
							dd = dist[a][b]
						}
					}
				}
				if dd < bestD {
					bestI, bestJ, bestD = i, j, dd
				}
			}
		}
		if bestI < 0 || bestD >= 0.999 {
			break
		}
		clusters[bestI] = append(clusters[bestI], clusters[bestJ]...)
		clusters = append(clusters[:bestJ], clusters[bestJ+1:]...)
	}
	for i := range clusters {
		sort.Ints(clusters[i])
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a][0] < clusters[b][0] })
	return clusters
}

// Clusters exposes the learned feature map (for tests and introspection).
func (k *KitNET) Clusters() [][]int { return k.clusters }
