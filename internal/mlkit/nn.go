package mlkit

import "math"

// Activation selects the hidden-layer nonlinearity of an MLP.
type Activation int

// Supported activations.
const (
	ActSigmoid Activation = iota
	ActReLU
	ActTanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActTanh:
		return math.Tanh(x)
	default:
		return 1 / (1 + math.Exp(-x))
	}
}

func (a Activation) deriv(y float64) float64 {
	// Derivative expressed through the activation output y.
	switch a {
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActTanh:
		return 1 - y*y
	default:
		return y * (1 - y)
	}
}

// MLP is a fully-connected feed-forward network trained by SGD with
// momentum on mean-squared error. It is the building block for the
// autoencoders used by Kitsune (A06), the Nokia network-centric detector
// (A11) and the early-detection model (A12), and serves as the "DNN" member
// of the Ensemble algorithm (A15-style stacks).
type MLP struct {
	// Sizes lists layer widths, inputs first, outputs last.
	Sizes []int
	// Act is the hidden activation; output is sigmoid for training targets
	// in [0,1].
	Act Activation
	// LR is the learning rate; 0 means 0.05.
	LR float64
	// Momentum coefficient; 0 means 0.9 (set negative for none).
	Momentum float64
	// Epochs over the data; 0 means 30.
	Epochs int
	// Seed drives weight init and sample order.
	Seed int64

	weights [][][]float64 // [layer][out][in]
	biases  [][]float64   // [layer][out]
	velW    [][][]float64
	velB    [][]float64
	obs     FitObserver
}

// SetFitObserver attaches a per-epoch progress observer (see FitObserver).
func (m *MLP) SetFitObserver(o FitObserver) { m.obs = o }

func (m *MLP) lr() float64 {
	if m.LR == 0 {
		return 0.05
	}
	return m.LR
}

func (m *MLP) momentum() float64 {
	if m.Momentum == 0 {
		return 0.9
	}
	if m.Momentum < 0 {
		return 0
	}
	return m.Momentum
}

func (m *MLP) epochs() int {
	if m.Epochs == 0 {
		return 30
	}
	return m.Epochs
}

// Init allocates and randomizes weights (Xavier-style). Fit calls it
// automatically when needed.
func (m *MLP) Init() {
	rng := NewRNG(m.Seed)
	nl := len(m.Sizes) - 1
	m.weights = make([][][]float64, nl)
	m.biases = make([][]float64, nl)
	m.velW = make([][][]float64, nl)
	m.velB = make([][]float64, nl)
	for l := 0; l < nl; l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in+out))
		m.weights[l] = make([][]float64, out)
		m.velW[l] = make([][]float64, out)
		for o := 0; o < out; o++ {
			m.weights[l][o] = make([]float64, in)
			m.velW[l][o] = make([]float64, in)
			for i := 0; i < in; i++ {
				m.weights[l][o][i] = rng.NormFloat64() * scale
			}
		}
		m.biases[l] = make([]float64, out)
		m.velB[l] = make([]float64, out)
	}
}

// Forward runs one input through the network, returning all layer
// activations (activations[0] is the input itself).
func (m *MLP) Forward(x []float64) [][]float64 {
	acts := make([][]float64, len(m.Sizes))
	acts[0] = x
	for l := range m.weights {
		out := make([]float64, len(m.weights[l]))
		last := l == len(m.weights)-1
		for o := range m.weights[l] {
			z := m.biases[l][o] + Dot(m.weights[l][o], acts[l])
			if last {
				out[o] = 1 / (1 + math.Exp(-z)) // sigmoid output
			} else {
				out[o] = m.Act.apply(z)
			}
		}
		acts[l+1] = out
	}
	return acts
}

// TrainStep backpropagates one (x, target) pair and returns its squared
// error before the update.
func (m *MLP) TrainStep(x, target []float64) float64 {
	if m.weights == nil {
		m.Init()
	}
	acts := m.Forward(x)
	nl := len(m.weights)
	deltas := make([][]float64, nl)

	// Output layer (sigmoid + MSE).
	outAct := acts[nl]
	var sqErr float64
	deltas[nl-1] = make([]float64, len(outAct))
	for o, yo := range outAct {
		e := yo - target[o]
		sqErr += e * e
		deltas[nl-1][o] = e * yo * (1 - yo)
	}
	// Hidden layers.
	for l := nl - 2; l >= 0; l-- {
		deltas[l] = make([]float64, m.Sizes[l+1])
		for i := range deltas[l] {
			var s float64
			for o := range deltas[l+1] {
				s += m.weights[l+1][o][i] * deltas[l+1][o]
			}
			deltas[l][i] = s * m.Act.deriv(acts[l+1][i])
		}
	}
	// Update with momentum.
	lr, mom := m.lr(), m.momentum()
	for l := 0; l < nl; l++ {
		for o := range m.weights[l] {
			d := deltas[l][o]
			for i := range m.weights[l][o] {
				g := d * acts[l][i]
				m.velW[l][o][i] = mom*m.velW[l][o][i] - lr*g
				m.weights[l][o][i] += m.velW[l][o][i]
			}
			m.velB[l][o] = mom*m.velB[l][o] - lr*d
			m.biases[l][o] += m.velB[l][o]
		}
	}
	return sqErr
}

// FitTargets trains on explicit (X, T) pairs for Epochs passes.
func (m *MLP) FitTargets(X, T [][]float64) error {
	if len(X) == 0 {
		return ErrNoData
	}
	if m.weights == nil {
		m.Init()
	}
	rng := NewRNG(m.Seed + 1)
	for e := 0; e < m.epochs(); e++ {
		perm := rng.Perm(len(X))
		var sqErr float64
		for _, i := range perm {
			sqErr += m.TrainStep(X[i], T[i])
		}
		if m.obs != nil {
			m.obs.FitEpoch("mlp", e, sqErr/float64(len(X)))
		}
	}
	return nil
}

// Predict01 runs rows forward and returns the first output unit.
func (m *MLP) Predict01(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		acts := m.Forward(row)
		out[i] = acts[len(acts)-1][0]
	}
	return out
}

// MLPClassifier adapts MLP to the Classifier interface for binary tasks.
// Inputs should be scaled to roughly [0,1].
type MLPClassifier struct {
	// Hidden lists hidden-layer widths; empty means one layer of 16.
	Hidden []int
	// Epochs, LR, Seed configure the underlying MLP.
	Epochs int
	LR     float64
	Seed   int64
	// Threshold on the output unit; 0 means 0.5.
	Threshold float64

	net *MLP
	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer (see FitObserver).
func (c *MLPClassifier) SetFitObserver(o FitObserver) { c.obs = o }

// Fit trains the network on binary labels.
func (c *MLPClassifier) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{16}
	}
	sizes := append([]int{d}, hidden...)
	sizes = append(sizes, 1)
	c.net = &MLP{Sizes: sizes, Act: ActReLU, Epochs: c.Epochs, LR: c.LR, Seed: c.Seed}
	if c.obs != nil {
		c.net.obs = c.obs
	}
	T := make([][]float64, len(y))
	for i, label := range y {
		if label != 0 {
			T[i] = []float64{1}
		} else {
			T[i] = []float64{0}
		}
	}
	return c.net.FitTargets(X, T)
}

// Predict thresholds the output unit.
func (c *MLPClassifier) Predict(X [][]float64) []int {
	thr := c.Threshold
	if thr == 0 {
		thr = 0.5
	}
	p := c.net.Predict01(X)
	out := make([]int, len(p))
	for i, v := range p {
		if v > thr {
			out[i] = 1
		}
	}
	return out
}

// Proba returns the raw output unit per row.
func (c *MLPClassifier) Proba(X [][]float64) []float64 { return c.net.Predict01(X) }
