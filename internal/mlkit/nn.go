package mlkit

import (
	"math"

	"lumen/internal/mlkit/linalg"
)

// Activation selects the hidden-layer nonlinearity of an MLP.
type Activation int

// Supported activations.
const (
	ActSigmoid Activation = iota
	ActReLU
	ActTanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActTanh:
		return math.Tanh(x)
	default:
		return 1 / (1 + math.Exp(-x))
	}
}

func (a Activation) deriv(y float64) float64 {
	// Derivative expressed through the activation output y.
	switch a {
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActTanh:
		return 1 - y*y
	default:
		return y * (1 - y)
	}
}

// applyVec applies the activation in place over a flat slice, hoisting
// the switch out of the element loop.
func (a Activation) applyVec(xs []float64) {
	switch a {
	case ActReLU:
		for i, x := range xs {
			if x < 0 {
				xs[i] = 0
			}
		}
	case ActTanh:
		for i, x := range xs {
			xs[i] = math.Tanh(x)
		}
	default:
		for i, x := range xs {
			xs[i] = 1 / (1 + math.Exp(-x))
		}
	}
}

// scaleByDeriv multiplies dst element-wise by the activation derivative
// expressed through the activation outputs ys.
func (a Activation) scaleByDeriv(ys, dst []float64) {
	switch a {
	case ActReLU:
		for i, y := range ys {
			if y <= 0 {
				dst[i] = 0
			}
		}
	case ActTanh:
		for i, y := range ys {
			dst[i] *= 1 - y*y
		}
	default:
		for i, y := range ys {
			dst[i] *= y * (1 - y)
		}
	}
}

// sigmoidVec applies the output sigmoid in place.
func sigmoidVec(xs []float64) {
	for i, x := range xs {
		xs[i] = 1 / (1 + math.Exp(-x))
	}
}

// MLP is a fully-connected feed-forward network trained by minibatch SGD
// with momentum on mean-squared error. Weights live in flat row-major
// linalg.Dense matrices (one allocation per layer) and the forward and
// backward passes over a minibatch are per-layer GEMM kernels rather
// than per-sample vector loops, so training cost is dominated by
// cache-blocked matrix products instead of pointer chasing. It is the
// building block for the autoencoders used by Kitsune (A06), the Nokia
// network-centric detector (A11) and the early-detection model (A12),
// and serves as the "DNN" member of the Ensemble algorithm (A15-style
// stacks).
type MLP struct {
	// Sizes lists layer widths, inputs first, outputs last.
	Sizes []int
	// Act is the hidden activation; output is sigmoid for training targets
	// in [0,1].
	Act Activation
	// LR is the learning rate; 0 means 0.05.
	LR float64
	// Momentum coefficient; 0 means 0.9 (set negative for none).
	Momentum float64
	// Epochs over the data; 0 means 30.
	Epochs int
	// Batch is the minibatch size for FitTargets; 0 means 1 — classic
	// per-sample SGD, the seed-faithful default (the detectors that
	// threshold on training-score distributions need its n-updates-per-
	// epoch convergence). Set >1 to opt into minibatch GEMM training:
	// gradients are averaged over the batch, so the step size is
	// independent of batch size.
	Batch int
	// Seed drives weight init and sample order.
	Seed int64

	weights []*linalg.Dense // [layer], out×in, flat row-major
	biases  [][]float64     // [layer][out]
	velW    []*linalg.Dense
	velB    [][]float64

	// Reused minibatch scratch: layer activations, deltas, gradients.
	acts   []*linalg.Dense // [layer+1], n×Sizes[l]
	deltas []*linalg.Dense // [layer], n×Sizes[l+1]
	gradW  []*linalg.Dense
	gradB  [][]float64
	tgt    *linalg.Dense
	rowSq  []float64

	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer (see FitObserver).
func (m *MLP) SetFitObserver(o FitObserver) { m.obs = o }

func (m *MLP) lr() float64 {
	if m.LR == 0 {
		return 0.05
	}
	return m.LR
}

func (m *MLP) momentum() float64 {
	if m.Momentum == 0 {
		return 0.9
	}
	if m.Momentum < 0 {
		return 0
	}
	return m.Momentum
}

func (m *MLP) epochs() int {
	if m.Epochs == 0 {
		return 30
	}
	return m.Epochs
}

func (m *MLP) batch() int {
	if m.Batch == 0 {
		return 1
	}
	return m.Batch
}

// Init allocates and randomizes weights (Xavier-style). Fit calls it
// automatically when needed. The draw order matches the historical
// nested-slice layout, so a given seed still produces the same initial
// network.
func (m *MLP) Init() {
	rng := NewRNG(m.Seed)
	nl := len(m.Sizes) - 1
	m.weights = make([]*linalg.Dense, nl)
	m.biases = make([][]float64, nl)
	m.velW = make([]*linalg.Dense, nl)
	m.velB = make([][]float64, nl)
	m.acts = make([]*linalg.Dense, nl+1)
	m.deltas = make([]*linalg.Dense, nl)
	m.gradW = make([]*linalg.Dense, nl)
	m.gradB = make([][]float64, nl)
	m.acts[0] = &linalg.Dense{}
	for l := 0; l < nl; l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in+out))
		m.weights[l] = linalg.NewDense(out, in)
		for i := range m.weights[l].Data {
			m.weights[l].Data[i] = rng.NormFloat64() * scale
		}
		m.velW[l] = linalg.NewDense(out, in)
		m.biases[l] = make([]float64, out)
		m.velB[l] = make([]float64, out)
		m.acts[l+1] = &linalg.Dense{}
		m.deltas[l] = &linalg.Dense{}
		m.gradW[l] = linalg.NewDense(out, in)
		m.gradB[l] = make([]float64, out)
	}
	m.tgt = &linalg.Dense{}
}

// forwardBatch runs the n rows already loaded into m.acts[0] through the
// network: one GEMM + bias + activation per layer, row-parallel.
func (m *MLP) forwardBatch(n int) {
	nl := len(m.weights)
	for l := 0; l < nl; l++ {
		z := m.acts[l+1].Reshape(n, m.Sizes[l+1])
		linalg.MatMulT(m.acts[l], m.weights[l], z)
		linalg.AddBiasRows(z, m.biases[l])
		last := l == nl-1
		linalg.ParallelRows(n, func(lo, hi int) {
			seg := z.Data[lo*z.Cols : hi*z.Cols]
			if last {
				sigmoidVec(seg) // sigmoid output
			} else {
				m.Act.applyVec(seg)
			}
		})
	}
}

// loadBatch copies the selected rows of X into m.acts[0] (and T into
// m.tgt when given), reusing the scratch backing arrays.
func (m *MLP) loadBatch(X, T [][]float64, idx []int) {
	n := len(idx)
	a0 := m.acts[0].Reshape(n, m.Sizes[0])
	for i, r := range idx {
		copy(a0.Row(i), X[r])
	}
	if T != nil {
		tg := m.tgt.Reshape(n, m.Sizes[len(m.Sizes)-1])
		for i, r := range idx {
			copy(tg.Row(i), T[r])
		}
	}
}

// trainOne is the n==1 fast path of trainBatch, operating on the row
// already loaded into m.acts[0] and m.tgt. Per-sample SGD is the hot
// loop of every online detector (KitNET trains packet by packet), so it
// bypasses the batch kernels: the forward pass is one Dot per output
// unit, the backward pass one Axpy per delta, and the momentum update is
// fused with the gradient outer product into a single pass over the
// weights — no gradient matrix is materialized. The gradient grouping
// (g = delta·activation, then -lr·g) matches trainBatch exactly.
func (m *MLP) trainOne(rowSq []float64) float64 {
	nl := len(m.weights)
	for l := 0; l < nl; l++ {
		z := m.acts[l+1].Reshape(1, m.Sizes[l+1]).Row(0)
		w := m.weights[l]
		ar := m.acts[l].Row(0)
		bl := m.biases[l]
		for o := range z {
			z[o] = bl[o] + linalg.Dot(w.Row(o), ar)
		}
		if l == nl-1 {
			sigmoidVec(z)
		} else {
			m.Act.applyVec(z)
		}
	}

	// Output delta (sigmoid + MSE).
	y := m.acts[nl].Row(0)
	tr := m.tgt.Row(0)
	d := m.deltas[nl-1].Reshape(1, m.Sizes[nl]).Row(0)
	var sqErr float64
	for o, yo := range y {
		e := yo - tr[o]
		sqErr += e * e
		d[o] = e * yo * (1 - yo)
	}
	if rowSq != nil {
		rowSq[0] = sqErr
	}

	// Hidden deltas: delta_l = (delta_{l+1} · W_{l+1}) ⊙ act'(a_{l+1}).
	for l := nl - 2; l >= 0; l-- {
		dl := m.deltas[l].Reshape(1, m.Sizes[l+1]).Row(0)
		for i := range dl {
			dl[i] = 0
		}
		w := m.weights[l+1]
		for o, dv := range m.deltas[l+1].Row(0) {
			if dv != 0 {
				linalg.Axpy(dv, w.Row(o), dl)
			}
		}
		m.Act.scaleByDeriv(m.acts[l+1].Row(0), dl)
	}

	// Fused gradient + momentum update, one pass over the weights.
	lr, mom := m.lr(), m.momentum()
	for l := 0; l < nl; l++ {
		al := m.acts[l].Row(0)
		w, vw := m.weights[l], m.velW[l]
		b, vb := m.biases[l], m.velB[l]
		for o, dv := range m.deltas[l].Row(0) {
			wr, vr := w.Row(o), vw.Row(o)
			for i, av := range al {
				g := dv * av
				vr[i] = mom*vr[i] - lr*g
				wr[i] += vr[i]
			}
			vb[o] = mom*vb[o] - lr*dv
			b[o] += vb[o]
		}
	}
	return sqErr
}

// trainBatch backpropagates the loaded minibatch of n rows against
// m.tgt and applies one momentum update with the gradients averaged
// over the batch. It returns the batch's summed pre-update squared error and,
// when rowSq is non-nil, fills per-row squared errors into it.
//
// Determinism: per-row work (output deltas, hidden deltas) fans out over
// ParallelRows with disjoint row writes; every reduction (error sums,
// bias gradients, weight gradients) runs serially in fixed row order, so
// results are bit-identical for any worker count.
func (m *MLP) trainBatch(n int, rowSq []float64) float64 {
	if n == 1 {
		return m.trainOne(rowSq)
	}
	m.forwardBatch(n)
	nl := len(m.weights)
	out := m.Sizes[nl]

	// Output layer (sigmoid + MSE).
	y := m.acts[nl]
	d := m.deltas[nl-1].Reshape(n, out)
	if cap(m.rowSq) < n {
		m.rowSq = make([]float64, n)
	}
	rs := m.rowSq[:n]
	linalg.ParallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yr, tr, dr := y.Row(i), m.tgt.Row(i), d.Row(i)
			var sq float64
			for o, yo := range yr {
				e := yo - tr[o]
				sq += e * e
				dr[o] = e * yo * (1 - yo)
			}
			rs[i] = sq
		}
	})
	var sqErr float64
	for i := 0; i < n; i++ {
		sqErr += rs[i]
	}
	if rowSq != nil {
		copy(rowSq, rs)
	}

	// Hidden layers: delta_l = (delta_{l+1} · W_{l+1}) ⊙ act'(a_{l+1}).
	for l := nl - 2; l >= 0; l-- {
		dl := m.deltas[l].Reshape(n, m.Sizes[l+1])
		linalg.MatMul(m.deltas[l+1], m.weights[l+1], dl)
		al := m.acts[l+1]
		linalg.ParallelRows(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m.Act.scaleByDeriv(al.Row(i), dl.Row(i))
			}
		})
	}

	// Gradients averaged over the batch, then one momentum update. The
	// 1/n scaling keeps the step size independent of batch size (and
	// makes n=1 coincide with classic per-sample SGD).
	lr, mom := m.lr()/float64(n), m.momentum()
	for l := 0; l < nl; l++ {
		gw := m.gradW[l]
		gw.Zero()
		linalg.AtMulAdd(m.deltas[l], m.acts[l], gw)
		gb := m.gradB[l]
		for o := range gb {
			gb[o] = 0
		}
		dl := m.deltas[l]
		for i := 0; i < n; i++ {
			dr := dl.Row(i)
			for o, dv := range dr {
				gb[o] += dv
			}
		}
		w, vw := m.weights[l], m.velW[l]
		for i, g := range gw.Data {
			vw.Data[i] = mom*vw.Data[i] - lr*g
			w.Data[i] += vw.Data[i]
		}
		b, vb := m.biases[l], m.velB[l]
		for o, g := range gb {
			vb[o] = mom*vb[o] - lr*g
			b[o] += vb[o]
		}
	}
	return sqErr
}

// Forward runs one input through the network, returning all layer
// activations (activations[0] is the input itself).
func (m *MLP) Forward(x []float64) [][]float64 {
	if m.weights == nil {
		m.Init()
	}
	a0 := m.acts[0].Reshape(1, m.Sizes[0])
	copy(a0.Row(0), x)
	m.forwardBatch(1)
	acts := make([][]float64, len(m.Sizes))
	acts[0] = x
	for l := 1; l < len(m.Sizes); l++ {
		acts[l] = append([]float64(nil), m.acts[l].Row(0)...)
	}
	return acts
}

// TrainStep backpropagates one (x, target) pair and returns its squared
// error before the update. It is the batch-of-one case of trainBatch —
// the online form Kitsune uses, packet by packet.
func (m *MLP) TrainStep(x, target []float64) float64 {
	if m.weights == nil {
		m.Init()
	}
	a0 := m.acts[0].Reshape(1, m.Sizes[0])
	copy(a0.Row(0), x)
	tg := m.tgt.Reshape(1, m.Sizes[len(m.Sizes)-1])
	copy(tg.Row(0), target)
	return m.trainBatch(1, nil)
}

// TrainBatchRows backpropagates the rows X[idx] against T[idx] as one
// minibatch (one forward/backward GEMM pass, one weight update) and
// fills rowSq — when non-nil, len(idx) long — with per-row pre-update
// squared errors. It returns the batch's summed squared error.
func (m *MLP) TrainBatchRows(X, T [][]float64, idx []int, rowSq []float64) float64 {
	if m.weights == nil {
		m.Init()
	}
	m.loadBatch(X, T, idx)
	return m.trainBatch(len(idx), rowSq)
}

// FitTargets trains on explicit (X, T) pairs for Epochs passes of
// shuffled minibatches.
func (m *MLP) FitTargets(X, T [][]float64) error {
	if len(X) == 0 {
		return ErrNoData
	}
	if m.weights == nil {
		m.Init()
	}
	rng := NewRNG(m.Seed + 1)
	batch := m.batch()
	n := len(X)
	for e := 0; e < m.epochs(); e++ {
		perm := rng.Perm(n)
		var sqErr float64
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			m.loadBatch(X, T, perm[start:end])
			sqErr += m.trainBatch(end-start, nil)
		}
		if m.obs != nil {
			m.obs.FitEpoch("mlp", e, sqErr/float64(n))
		}
	}
	return nil
}

// scoreReplica returns an MLP that shares the fitted weights and biases
// (read-only at inference) but owns fresh activation and gradient
// scratch, so replicas may run VisitOutputs / Predict01 concurrently
// with each other and with the original. Outputs are bit-identical to
// the original's: the forward pass depends only on the shared
// parameters. Replicas are for scoring only — training one would update
// weights the other replicas read.
func (m *MLP) scoreReplica() *MLP {
	cp := *m
	cp.acts = make([]*linalg.Dense, len(m.acts))
	for i := range cp.acts {
		cp.acts[i] = &linalg.Dense{}
	}
	cp.deltas = make([]*linalg.Dense, len(m.deltas))
	for i := range cp.deltas {
		cp.deltas[i] = &linalg.Dense{}
	}
	cp.gradW, cp.gradB = nil, nil
	cp.velW, cp.velB = nil, nil
	cp.tgt = &linalg.Dense{}
	cp.rowSq = nil
	return &cp
}

// VisitOutputs streams X through the network in minibatches and calls
// visit with each row index and its final-layer outputs. The output
// slice is scratch, only valid inside the call. Batch predict/score
// paths build on this so inference is GEMM-shaped too.
func (m *MLP) VisitOutputs(X [][]float64, visit func(i int, out []float64)) {
	if m.weights == nil || len(X) == 0 {
		return
	}
	const block = 256
	for start := 0; start < len(X); start += block {
		end := start + block
		if end > len(X) {
			end = len(X)
		}
		n := end - start
		a0 := m.acts[0].Reshape(n, m.Sizes[0])
		for i := 0; i < n; i++ {
			copy(a0.Row(i), X[start+i])
		}
		m.forwardBatch(n)
		last := m.acts[len(m.Sizes)-1]
		for i := 0; i < n; i++ {
			visit(start+i, last.Row(i))
		}
	}
}

// Predict01 runs rows forward and returns the first output unit.
func (m *MLP) Predict01(X [][]float64) []float64 {
	out := make([]float64, len(X))
	m.VisitOutputs(X, func(i int, o []float64) { out[i] = o[0] })
	return out
}

// MLPClassifier adapts MLP to the Classifier interface for binary tasks.
// Inputs should be scaled to roughly [0,1].
type MLPClassifier struct {
	// Hidden lists hidden-layer widths; empty means one layer of 16.
	Hidden []int
	// Epochs, LR, Seed configure the underlying MLP.
	Epochs int
	LR     float64
	Seed   int64
	// Threshold on the output unit; 0 means 0.5.
	Threshold float64

	net *MLP
	obs FitObserver
}

// SetFitObserver attaches a per-epoch progress observer (see FitObserver).
func (c *MLPClassifier) SetFitObserver(o FitObserver) { c.obs = o }

// Fit trains the network on binary labels.
func (c *MLPClassifier) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	hidden := c.Hidden
	if len(hidden) == 0 {
		hidden = []int{16}
	}
	sizes := append([]int{d}, hidden...)
	sizes = append(sizes, 1)
	c.net = &MLP{Sizes: sizes, Act: ActReLU, Epochs: c.Epochs, LR: c.LR, Seed: c.Seed}
	if c.obs != nil {
		c.net.obs = c.obs
	}
	T := make([][]float64, len(y))
	for i, label := range y {
		if label != 0 {
			T[i] = []float64{1}
		} else {
			T[i] = []float64{0}
		}
	}
	return c.net.FitTargets(X, T)
}

// Predict thresholds the output unit; a never-fitted classifier
// predicts all-benign.
func (c *MLPClassifier) Predict(X [][]float64) []int {
	if c.net == nil {
		return make([]int, len(X))
	}
	thr := c.Threshold
	if thr == 0 {
		thr = 0.5
	}
	p := c.net.Predict01(X)
	out := make([]int, len(p))
	for i, v := range p {
		if v > thr {
			out[i] = 1
		}
	}
	return out
}

// Proba returns the raw output unit per row; all-zero before any fit.
func (c *MLPClassifier) Proba(X [][]float64) []float64 {
	if c.net == nil {
		return make([]float64, len(X))
	}
	return c.net.Predict01(X)
}
