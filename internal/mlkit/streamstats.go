package mlkit

import "sort"

// P2Quantile estimates a single quantile of a stream in O(1) memory using
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// min, max, target quantile and its two flanking mid-quantiles, adjusted
// by parabolic interpolation as observations arrive. For fewer than five
// observations the estimate is exact (computed from the buffered values).
// It backs the streaming form of the `clip` op and Thresholded's online
// threshold calibration.
type P2Quantile struct {
	p   float64
	q   [5]float64 // marker heights
	n   [5]float64 // marker positions (1-based)
	np  [5]float64 // desired positions
	dnp [5]float64 // desired-position increments
	cnt int
}

// NewP2Quantile returns an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile { return &P2Quantile{p: p} }

// Quantile reports the target quantile the estimator tracks.
func (e *P2Quantile) Quantile() float64 { return e.p }

// Count reports the number of observations absorbed so far.
func (e *P2Quantile) Count() int { return e.cnt }

// Add absorbs one observation.
func (e *P2Quantile) Add(x float64) {
	if e.cnt < 5 {
		e.q[e.cnt] = x
		e.cnt++
		if e.cnt == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			for i := range e.n {
				e.n[i] = float64(i + 1)
			}
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dnp = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	e.cnt++
	// Locate the cell and stretch the extreme markers if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dnp[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Value returns the current quantile estimate (exact below five
// observations, the P² marker estimate after).
func (e *P2Quantile) Value() float64 {
	if e.cnt == 0 {
		return 0
	}
	if e.cnt < 5 {
		buf := append([]float64(nil), e.q[:e.cnt]...)
		sort.Float64s(buf)
		return QuantileSorted(buf, e.p)
	}
	return e.q[2]
}

// PageHinkley detects upward drift in a stream's mean (Page's CUSUM test
// in the Hinkley form): it accumulates deviations of each observation
// from the running mean, minus a tolerance Delta, and signals when the
// accumulated sum rises more than Lambda above its historical minimum.
// With TwoSided set, the mirrored test runs as well and mean decreases
// fire detections too. Applied to anomaly-score streams it flags
// distribution shift — the trigger behind the `drift_detect` op.
type PageHinkley struct {
	// Delta is the magnitude tolerance subtracted from each deviation;
	// 0 means 0.005.
	Delta float64
	// Lambda is the detection threshold on (cum - min); 0 means 50.
	Lambda float64
	// MinSamples is the warm-up before detections may fire; 0 means 30.
	MinSamples int
	// TwoSided also runs the mirrored test, so drops in the stream's mean
	// fire detections too. A detector watching a score stream usually
	// wants this: a model gone blind (scores collapsing toward zero) is
	// drift just as much as a score surge.
	TwoSided bool

	n        int
	mean     float64
	cum      float64
	minCum   float64
	cumDn    float64
	minCumDn float64
	// lastStat / lastMean capture the test statistic and running mean at
	// the moment of the most recent detection, surviving the reset so the
	// caller can report what fired.
	lastStat float64
	lastMean float64
}

func (ph *PageHinkley) delta() float64 {
	if ph.Delta == 0 {
		return 0.005
	}
	return ph.Delta
}

func (ph *PageHinkley) lambda() float64 {
	if ph.Lambda == 0 {
		return 50
	}
	return ph.Lambda
}

func (ph *PageHinkley) minSamples() int {
	if ph.MinSamples == 0 {
		return 30
	}
	return ph.MinSamples
}

// Add absorbs one observation and reports whether drift was detected.
// On detection the accumulated state resets, arming the next detection.
func (ph *PageHinkley) Add(x float64) bool {
	ph.n++
	ph.mean += (x - ph.mean) / float64(ph.n)
	ph.cum += x - ph.mean - ph.delta()
	if ph.cum < ph.minCum {
		ph.minCum = ph.cum
	}
	ph.cumDn += ph.mean - x - ph.delta()
	if ph.cumDn < ph.minCumDn {
		ph.minCumDn = ph.cumDn
	}
	if ph.n < ph.minSamples() {
		return false
	}
	if ph.cum-ph.minCum > ph.lambda() {
		ph.lastStat = ph.cum - ph.minCum
		ph.lastMean = ph.mean
		ph.Reset()
		return true
	}
	if ph.TwoSided && ph.cumDn-ph.minCumDn > ph.lambda() {
		ph.lastStat = ph.cumDn - ph.minCumDn
		ph.lastMean = ph.mean
		ph.Reset()
		return true
	}
	return false
}

// LastDetection returns the test statistic and running mean captured at
// the most recent detection (zeroes before any detection fires).
func (ph *PageHinkley) LastDetection() (stat, mean float64) {
	return ph.lastStat, ph.lastMean
}

// Stat returns the current test statistic (cum - min), the value
// compared against Lambda.
func (ph *PageHinkley) Stat() float64 { return ph.cum - ph.minCum }

// Mean returns the running mean of all observations since the last reset.
func (ph *PageHinkley) Mean() float64 { return ph.mean }

// Count returns observations absorbed since the last reset.
func (ph *PageHinkley) Count() int { return ph.n }

// Reset clears all accumulated state (called automatically on detection).
func (ph *PageHinkley) Reset() {
	ph.n = 0
	ph.mean = 0
	ph.cum = 0
	ph.minCum = 0
	ph.cumDn = 0
	ph.minCumDn = 0
}
