package mlkit

import (
	"math"

	"lumen/internal/mlkit/linalg"
)

// LinearSVM is a binary linear SVM trained with the Pegasos stochastic
// sub-gradient algorithm on the hinge loss. Inputs should be scaled.
type LinearSVM struct {
	// Lambda is the L2 regularization strength; 0 means 1e-4.
	Lambda float64
	// Epochs over the data; 0 means 10.
	Epochs int
	// Seed drives the sampling order.
	Seed int64

	w []float64
	b float64
	// scale calibrates Proba's logistic squashing.
	scale float64
	// steps is the global Pegasos step counter; persisting it across
	// PartialFit batches keeps the 1/(λt) step size decaying.
	steps int
	// absSum/absN accumulate |margin| for the streaming Proba
	// calibration.
	absSum float64
	absN   int
	obs    FitObserver
}

// SetFitObserver attaches a per-epoch progress observer; the reported
// loss is the epoch's mean hinge loss over the sampled points.
func (s *LinearSVM) SetFitObserver(o FitObserver) { s.obs = o }

// Fit trains on X with labels y in {0,1} (mapped internally to ±1).
func (s *LinearSVM) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	lambda := s.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	epochs := s.Epochs
	if epochs == 0 {
		epochs = 10
	}
	s.w = make([]float64, d)
	s.b = 0
	s.steps = 0
	rng := NewRNG(s.Seed)
	n := len(X)
	for e := 0; e < epochs; e++ {
		var hinge float64
		for k := 0; k < n; k++ {
			s.steps++
			i := rng.Intn(n)
			yi := -1.0
			if y[i] != 0 {
				yi = 1
			}
			eta := 1 / (lambda * float64(s.steps))
			margin := yi * (Dot(s.w, X[i]) + s.b)
			// w <- (1 - eta*lambda) w [+ eta*yi*x when violating]
			decay := 1 - eta*lambda
			for j := range s.w {
				s.w[j] *= decay
			}
			if margin < 1 {
				hinge += 1 - margin
				for j, v := range X[i] {
					s.w[j] += eta * yi * v
				}
				s.b += eta * yi
			}
		}
		if s.obs != nil {
			s.obs.FitEpoch("linear_svm", e, hinge/float64(n))
		}
	}
	// Calibrate a logistic scale from the margin spread; the running
	// sums carry into any subsequent PartialFit recalibration.
	var sumAbs float64
	for _, row := range X {
		sumAbs += math.Abs(Dot(s.w, row) + s.b)
	}
	s.absSum, s.absN = sumAbs, n
	s.scale = 1
	if m := sumAbs / float64(n); m > 0 {
		s.scale = 1 / m
	}
	return nil
}

// Decision returns the signed margin per row. Rows split across the
// worker pool; each element is written by exactly one goroutine, so
// results are bit-identical for any worker count.
func (s *LinearSVM) Decision(X [][]float64) []float64 {
	out := make([]float64, len(X))
	linalg.ParallelRows(len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = linalg.Dot(s.w, X[i]) + s.b
		}
	})
	return out
}

// Predict returns 1 where the margin is positive.
func (s *LinearSVM) Predict(X [][]float64) []int {
	dec := s.Decision(X)
	out := make([]int, len(dec))
	for i, m := range dec {
		if m > 0 {
			out[i] = 1
		}
	}
	return out
}

// Proba squashes margins through a calibrated logistic.
func (s *LinearSVM) Proba(X [][]float64) []float64 {
	dec := s.Decision(X)
	out := make([]float64, len(dec))
	for i, m := range dec {
		out[i] = 1 / (1 + math.Exp(-m*s.scale))
	}
	return out
}
