package mlkit

import "math"

// Scaler transforms feature matrices; Fit learns parameters from training
// data, Transform applies them (never mutating its input).
type Scaler interface {
	Fit(X [][]float64) error
	Transform(X [][]float64) [][]float64
}

// StandardScaler centers each feature to zero mean and unit variance.
// Zero-variance features are centered only.
type StandardScaler struct {
	Mean []float64
	Std  []float64

	// count/m2 are the Welford running moments behind PartialFit; Fit
	// seeds them so batch-then-streaming continues the same statistics.
	count float64
	m2    []float64
}

// Fit computes per-feature mean and standard deviation.
func (s *StandardScaler) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	s.Mean = make([]float64, d)
	s.Std = make([]float64, d)
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	s.count = n
	s.m2 = make([]float64, d)
	for j := range s.Std {
		s.m2[j] = s.Std[j]
		s.Std[j] = math.Sqrt(s.Std[j] / n)
	}
	return nil
}

// Transform returns a standardized copy of X.
func (s *StandardScaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v - s.Mean[j]
			if s.Std[j] > 0 {
				r[j] /= s.Std[j]
			}
		}
		out[i] = r
	}
	return out
}

// MinMaxScaler maps each feature into [0,1] using the training min/max.
// Constant features map to 0.
type MinMaxScaler struct {
	Min []float64
	Max []float64
}

// Fit records per-feature minima and maxima.
func (s *MinMaxScaler) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	s.Min = make([]float64, d)
	s.Max = make([]float64, d)
	copy(s.Min, X[0])
	copy(s.Max, X[0])
	for _, row := range X[1:] {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return nil
}

// Transform returns a scaled copy of X; values outside the training range
// are clamped to [0,1].
func (s *MinMaxScaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			span := s.Max[j] - s.Min[j]
			if span <= 0 {
				r[j] = 0
				continue
			}
			x := (v - s.Min[j]) / span
			if x < 0 {
				x = 0
			} else if x > 1 {
				x = 1
			}
			r[j] = x
		}
		out[i] = r
	}
	return out
}

// CorrelationFilter drops features that are highly correlated with an
// earlier feature (|r| >= Threshold), a standard cleanup step the paper's
// synthesized algorithms apply.
type CorrelationFilter struct {
	// Threshold above which a later feature is dropped. Defaults to 0.95
	// when zero.
	Threshold float64
	// Keep holds the retained column indices after Fit.
	Keep []int
}

// Fit selects the columns to keep.
func (f *CorrelationFilter) Fit(X [][]float64) error {
	d, err := checkXY(X, nil)
	if err != nil {
		return err
	}
	thr := f.Threshold
	if thr == 0 {
		thr = 0.95
	}
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(X))
		for i, row := range X {
			col[i] = row[j]
		}
		cols[j] = col
	}
	f.Keep = f.Keep[:0]
	for j := 0; j < d; j++ {
		redundant := false
		for _, k := range f.Keep {
			if math.Abs(PearsonCorr(cols[j], cols[k])) >= thr {
				redundant = true
				break
			}
		}
		if !redundant {
			f.Keep = append(f.Keep, j)
		}
	}
	return nil
}

// Transform projects X onto the retained columns.
func (f *CorrelationFilter) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(f.Keep))
		for k, j := range f.Keep {
			r[k] = row[j]
		}
		out[i] = r
	}
	return out
}
