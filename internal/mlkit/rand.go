package mlkit

// A small deterministic PRNG (splitmix64 seeded xoshiro-like core) used by
// every randomized model in mlkit. math/rand would also do, but owning the
// generator guarantees bit-identical results across Go versions, which the
// benchmark harness relies on when comparing runs.

// RNG is a deterministic pseudo-random number generator.
// The zero value is not valid; use NewRNG.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1 = next(), next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits (xorshift128+).
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mlkit: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal sample (Box–Muller, using one of the
// pair; simple and adequate for model initialization).
func (r *RNG) NormFloat64() float64 {
	// Marsaglia polar method.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * sqrt(-2*log(s)/s)
	}
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
