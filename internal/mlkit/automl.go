package mlkit

import "fmt"

// AutoML performs a small model search — the stand-in for the AutoML stage
// nPrint (A01–A04) uses. It trains each candidate on a split of the
// training data, scores F1 on the held-out part, then refits the winner on
// everything.
type AutoML struct {
	// Candidates to try; empty means a default family of RF, DT, NB, KNN
	// and linear SVM with a couple of hyperparameter settings each.
	Candidates []NamedClassifier
	// ValFrac is the internal validation fraction; 0 means 0.25.
	ValFrac float64
	// Seed drives the split.
	Seed int64

	best     Classifier
	bestName string
	bestF1   float64
}

// NamedClassifier pairs a constructor with a label so the winner can be
// reported.
type NamedClassifier struct {
	Name string
	New  func() Classifier
}

// DefaultCandidates returns the stock search space.
func DefaultCandidates(seed int64) []NamedClassifier {
	return []NamedClassifier{
		{"rf50", func() Classifier { return &RandomForest{NTrees: 50, Seed: seed} }},
		{"rf20d8", func() Classifier { return &RandomForest{NTrees: 20, MaxDepth: 8, Seed: seed} }},
		{"dt", func() Classifier { return &DecisionTree{Seed: seed} }},
		{"dt8", func() Classifier { return &DecisionTree{MaxDepth: 8, Seed: seed} }},
		{"gnb", func() Classifier { return &GaussianNB{} }},
		{"knn5", func() Classifier { return &KNN{K: 5, Seed: seed} }},
		{"svm", func() Classifier { return &LinearSVM{Seed: seed} }},
	}
}

// Fit searches the candidate space and keeps the best model refit on all
// of X.
func (a *AutoML) Fit(X [][]float64, y []int) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	cands := a.Candidates
	if len(cands) == 0 {
		cands = DefaultCandidates(a.Seed)
	}
	valFrac := a.ValFrac
	if valFrac == 0 {
		valFrac = 0.25
	}
	Xtr, ytr, Xval, yval := StratifiedSplit(X, y, valFrac, a.Seed)
	if len(Xval) == 0 || len(Xtr) == 0 {
		Xtr, ytr, Xval, yval = X, y, X, y
	}
	a.best = nil
	a.bestF1 = -1
	for _, cand := range cands {
		m := cand.New()
		if err := m.Fit(Xtr, ytr); err != nil {
			continue
		}
		f1 := F1Score(yval, m.Predict(Xval))
		if f1 > a.bestF1 {
			a.bestF1 = f1
			a.bestName = cand.Name
			a.best = m
		}
	}
	if a.best == nil {
		return fmt.Errorf("mlkit: automl found no trainable candidate")
	}
	return a.best.Fit(X, y) // refit winner on the full training set
}

// Predict delegates to the winning model.
func (a *AutoML) Predict(X [][]float64) []int { return a.best.Predict(X) }

// Proba delegates when the winner supports it, else returns hard labels.
func (a *AutoML) Proba(X [][]float64) []float64 {
	if p, ok := a.best.(ProbClassifier); ok {
		return p.Proba(X)
	}
	pred := a.best.Predict(X)
	out := make([]float64, len(pred))
	for i, v := range pred {
		out[i] = float64(v)
	}
	return out
}

// BestName reports the label of the winning candidate after Fit.
func (a *AutoML) BestName() string { return a.bestName }
