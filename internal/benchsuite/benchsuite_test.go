package benchsuite

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lumen/internal/dataset"
)

// fastSuite builds a small suite for unit tests: cheap algorithms, a few
// datasets, reduced scale.
func fastSuite(t *testing.T, algs, dss []string) *Suite {
	t.Helper()
	s, err := New(Config{Scale: 0.3, Seed: 1, AlgIDs: algs, DatasetIDs: dss})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesScope(t *testing.T) {
	if _, err := New(Config{AlgIDs: []string{"A99"}}); err == nil {
		t.Error("unknown algorithm scope should fail")
	}
	if _, err := New(Config{DatasetIDs: []string{"ZZ"}}); err == nil {
		t.Error("unknown dataset scope should fail")
	}
}

func TestInterleaveSplitCoversAttacks(t *testing.T) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.3)
	tr, te := InterleaveSplit(ds)
	if len(tr.Packets)+len(te.Packets) != len(ds.Packets) {
		t.Fatal("split lost packets")
	}
	if tr.MaliciousFraction() == 0 || te.MaliciousFraction() == 0 {
		t.Fatal("both halves must contain attacks")
	}
	if len(tr.AttackSet()) != len(te.AttackSet()) {
		t.Errorf("attack coverage differs: %v vs %v", tr.AttackSet(), te.AttackSet())
	}
}

func TestCanRunRules(t *testing.T) {
	s := fastSuite(t, nil, nil)
	get := func(id string) *split { return s.splits[id] }
	alg := func(id string) (a interface{ Granularity() dataset.Granularity }) {
		for _, x := range s.algs {
			if x.ID == id {
				return x
			}
		}
		t.Fatalf("no alg %s", id)
		return nil
	}
	_ = alg
	find := func(id string) int {
		for i, x := range s.algs {
			if x.ID == id {
				return i
			}
		}
		t.Fatalf("no alg %s", id)
		return -1
	}
	a14 := s.algs[find("A14")] // connection
	a05 := s.algs[find("A05")] // packet, needs IP
	a06 := s.algs[find("A06")] // packet, no IP needed
	if CanRun(a14, get("P0"), get("P0")) {
		t.Error("connection algorithm must not run on packet-granularity labels")
	}
	if !CanRun(a14, get("F4"), get("F7")) {
		t.Error("connection algorithm on connection datasets should run")
	}
	if !CanRun(a05, get("F1"), get("P0")) {
		t.Error("packet algorithm can propagate connection labels down")
	}
	if CanRun(a05, get("P2"), get("P2")) {
		t.Error("IP-based algorithm must not run on 802.11 AWID3")
	}
	if !CanRun(a06, get("P2"), get("P2")) {
		t.Error("Kitsune is the one algorithm that runs on AWID3 (Obs. 4)")
	}
}

func TestRunSameDatasetFillsStore(t *testing.T) {
	s := fastSuite(t, []string{"A13", "A14", "A15"}, []string{"F1", "F6"})
	s.RunSameDataset()
	if len(s.Store.Results) != 6 {
		t.Fatalf("got %d results, want 3 algs x 2 datasets = 6", len(s.Store.Results))
	}
	for _, r := range s.Store.Results {
		if !r.OK() {
			t.Errorf("%s on %s failed: %s", r.Alg, r.TrainDS, r.Err)
		}
		if !r.Same() {
			t.Errorf("same-dataset run has train %s != test %s", r.TrainDS, r.TestDS)
		}
		if r.NUnits == 0 {
			t.Errorf("%s on %s evaluated zero units", r.Alg, r.TrainDS)
		}
		if len(r.PerAttack) == 0 {
			t.Errorf("%s on %s has no per-attack scores", r.Alg, r.TrainDS)
		}
	}
}

func TestRunCrossDatasetPairs(t *testing.T) {
	s := fastSuite(t, []string{"A14"}, []string{"F1", "F4", "F6"})
	s.RunCrossDataset()
	if len(s.Store.Results) != 6 { // 3x2 ordered pairs
		t.Fatalf("got %d results, want 6 ordered pairs", len(s.Store.Results))
	}
	for _, r := range s.Store.Results {
		if r.Same() {
			t.Error("cross run must not pair a dataset with itself")
		}
	}
}

func TestFigureBuilders(t *testing.T) {
	s := fastSuite(t, []string{"A13", "A14", "A15"}, []string{"F1", "F4", "F6"})
	s.RunAll()

	h5 := s.Fig5()
	nonNaN := 0
	for i := range h5.RowNames {
		for j := range h5.ColNames {
			if !math.IsNaN(h5.Cells[i][j]) {
				nonNaN++
			}
		}
	}
	if nonNaN == 0 {
		t.Error("Fig5 heatmap has no data cells")
	}

	rows7 := s.Fig7()
	if len(rows7) != 3 {
		t.Fatalf("Fig7 rows = %d, want 3", len(rows7))
	}
	for _, r := range rows7 {
		if len(r.PrecDiff.Values) == 0 {
			t.Errorf("Fig7 %s: empty distribution", r.Alg)
		}
		for _, v := range r.PrecDiff.Values {
			if v < -1e-9 {
				t.Errorf("Fig7 %s: negative distance from best (%v)", r.Alg, v)
			}
		}
	}

	prec8, rec8 := s.Fig8()
	prec9, rec9 := s.Fig9()
	if len(prec8) != 3 || len(rec8) != 3 || len(prec9) != 3 || len(rec9) != 3 {
		t.Fatal("Fig8/Fig9 distribution counts wrong")
	}
	for i := range prec8 {
		if len(prec8[i].Values) != 3 { // 3 same-dataset runs per alg
			t.Errorf("Fig8 %s has %d values, want 3", prec8[i].Name, len(prec8[i].Values))
		}
		if len(prec9[i].Values) != 6 { // 6 cross pairs per alg
			t.Errorf("Fig9 %s has %d values, want 6", prec9[i].Name, len(prec9[i].Values))
		}
	}

	hp, hr := s.Fig10()
	if math.IsNaN(hp.Get("F4", "F1")) { // test F4, train F1 must exist
		t.Error("Fig10 missing cross cell")
	}
	if math.IsNaN(hr.Get("F1", "F1")) {
		t.Error("Fig10 missing diagonal cell")
	}
}

func TestObs2Counts(t *testing.T) {
	s := fastSuite(t, []string{"A13", "A14"}, []string{"F1", "F4"})
	s.RunAll()
	sp, sr, cp, cr := s.Obs2(0.2)
	for _, v := range []int{sp, sr, cp, cr} {
		if v < 0 || v > 2 {
			t.Fatalf("Obs2 counts out of range: %d %d %d %d", sp, sr, cp, cr)
		}
	}
}

func TestFig6MergedAndModified(t *testing.T) {
	s := fastSuite(t, []string{"A13", "A14"}, []string{"F1", "F4", "F6"})
	s.RunSameDataset()
	res, err := s.Fig6(0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: merged A08, A09, A13, A14 + AM01-AM03.
	if len(res.Heatmap.RowNames) != 7 {
		t.Fatalf("Fig6 rows = %v, want 7", res.Heatmap.RowNames)
	}
	if len(res.MeanPrecision) != 7 {
		t.Fatalf("Fig6 means = %d, want 7", len(res.MeanPrecision))
	}
	for id, m := range res.MeanPrecision {
		if m < 0 || m > 1 {
			t.Errorf("%s merged precision %v out of range", id, m)
		}
	}
	imp := s.Obs5(res)
	if len(imp) == 0 {
		t.Error("Obs5 produced no improvements (A13/A14 have same-dataset baselines)")
	}
}

func TestValidationRuns(t *testing.T) {
	s := fastSuite(t, []string{"A07", "A10", "A14"}, []string{"F0", "F1", "F2", "F4", "F5", "F6"})
	rows, err := s.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("validation rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Measured < 0 || r.Measured > 1 {
			t.Errorf("%s: measured %v out of range", r.Case, r.Measured)
		}
	}
	if out := ValidationTable(rows); len(out) == 0 {
		t.Error("empty validation table")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := fastSuite(t, []string{"A14"}, []string{"F1"})
	s.RunSameDataset()
	path := filepath.Join(t.TempDir(), "results.json")
	if err := s.Store.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Results) != len(s.Store.Results) {
		t.Fatalf("loaded %d results, want %d", len(loaded.Results), len(s.Store.Results))
	}
	if loaded.Results[0].Precision != s.Store.Results[0].Precision {
		t.Error("precision did not survive round trip")
	}
}

func TestStoreQueries(t *testing.T) {
	st := &Store{Results: []RunResult{
		{Alg: "A1", TrainDS: "F0", TestDS: "F0", Precision: 0.9, Recall: 0.8},
		{Alg: "A1", TrainDS: "F0", TestDS: "F1", Precision: 0.4, Recall: 0.3},
		{Alg: "A2", TrainDS: "F0", TestDS: "F1", Precision: 0.7, Recall: 0.6},
		{Alg: "A3", TrainDS: "F0", TestDS: "F1", Err: "boom"},
	}}
	if got := len(st.Filter(func(r RunResult) bool { return r.Same() })); got != 1 {
		t.Errorf("same filter = %d, want 1", got)
	}
	if algs := st.Algs(); len(algs) != 3 || algs[0] != "A1" {
		t.Errorf("Algs() = %v", algs)
	}
	by := st.ByAlg()
	if len(by["A3"]) != 0 {
		t.Error("failed runs must be excluded from ByAlg")
	}
	best := st.BestPerPair()
	if b := best[[2]string{"F0", "F1"}]; b[0] != 0.7 || b[1] != 0.6 {
		t.Errorf("best for F0->F1 = %v, want {0.7 0.6}", b)
	}
}

func TestLiteratureAndFig1a(t *testing.T) {
	if len(Literature()) != 11 {
		t.Fatalf("literature entries = %d, want 11 (Table 1)", len(Literature()))
	}
	if Table1() == "" {
		t.Error("empty Table 1")
	}
	tbl := Fig1a()
	if len(tbl.Rows) != 11 {
		t.Fatalf("Fig1a rows = %d, want 11", len(tbl.Rows))
	}
	// Paper: "for half of the algorithms ... no possible comparison".
	zf := Fig1aZeroFraction()
	if zf < 0.4 || zf > 0.6 {
		t.Errorf("zero-comparison fraction = %.2f, want ~0.5", zf)
	}
}

func TestSynthesisEvalScoresPipelines(t *testing.T) {
	s := fastSuite(t, []string{"A14"}, []string{"F1", "F6"})
	eval := s.SynthesisEval()
	a14 := s.algs[0]
	score := eval(a14.Pipeline)
	if score <= 0 || score > 1 {
		t.Fatalf("eval score = %v, want in (0,1]", score)
	}
}

func TestNewNamesUnknownIDsAmongValid(t *testing.T) {
	// A typo'd ID among valid ones must error, not silently shrink the suite.
	_, err := New(Config{AlgIDs: []string{"A14", "A99"}, DatasetIDs: []string{"F1"}})
	if err == nil || !strings.Contains(err.Error(), "A99") {
		t.Errorf("error should name the unknown algorithm ID: %v", err)
	}
	_, err = New(Config{DatasetIDs: []string{"F1", "f4"}})
	if err == nil || !strings.Contains(err.Error(), "f4") {
		t.Errorf("error should name the unknown dataset ID: %v", err)
	}
}

func TestRunAllRecordsMetaAndWall(t *testing.T) {
	s := fastSuite(t, []string{"A14", "A15"}, []string{"F1", "F4"})
	s.cfg.Workers = 2
	s.RunSameDataset()
	m := s.Store.Meta
	if m.Runs != len(s.Store.Results) || m.Runs == 0 {
		t.Fatalf("meta.Runs=%d, results=%d", m.Runs, len(s.Store.Results))
	}
	if m.Workers != 2 {
		t.Errorf("meta.Workers=%d, want 2", m.Workers)
	}
	if m.Wall <= 0 || m.Busy <= 0 {
		t.Errorf("wall=%v busy=%v, want positive", m.Wall, m.Busy)
	}
	if m.Utilization <= 0 || m.Utilization > 1.5 {
		t.Errorf("utilization=%v out of range", m.Utilization)
	}
	for _, r := range s.Store.Results {
		if r.OK() && r.Wall <= 0 {
			t.Errorf("run %s/%s has no wall time", r.Alg, r.TrainDS)
		}
	}
}

func TestSuiteSingleflightOneComputationPerKey(t *testing.T) {
	// Many algorithms share the flow_assemble/flow_features prefix on the
	// same dataset; with a multi-worker pool the first wave used to
	// recompute the same key once per worker. Singleflight must keep it
	// to one computation per distinct key: every miss leaves an entry.
	s, err := New(Config{
		Scale: 0.3, Seed: 1, Workers: 4,
		AlgIDs:     []string{"A07", "A08", "A09", "A13", "A14", "A15"},
		DatasetIDs: []string{"F1", "F4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunSameDataset()
	st := s.CacheStats()
	if st.Misses == 0 {
		t.Fatal("no cache activity")
	}
	if st.Misses != st.Entries+st.Evictions {
		t.Errorf("misses=%d entries=%d evictions=%d: some key was computed more than once",
			st.Misses, st.Entries, st.Evictions)
	}
	if st.Hits == 0 {
		t.Error("no cache hits across algorithms sharing a prefix")
	}
}

func TestCacheEntriesBoundEvicts(t *testing.T) {
	s, err := New(Config{
		Scale: 0.3, Seed: 1, CacheEntries: 2,
		AlgIDs:     []string{"A13", "A14", "A15"},
		DatasetIDs: []string{"F1", "F4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunSameDataset()
	st := s.CacheStats()
	if st.Entries > 2 {
		t.Errorf("entries=%d exceeds the configured bound 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("bound of 2 over a multi-alg run must evict")
	}
}

func TestOpProfilesAggregate(t *testing.T) {
	s, err := New(Config{
		Scale: 0.3, Seed: 1, Profile: true,
		AlgIDs:     []string{"A14"},
		DatasetIDs: []string{"F1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunSameDataset()
	profs := s.OpProfiles()
	if len(profs) == 0 {
		t.Fatal("no per-op profiles aggregated")
	}
	var sawCached, sawAllocs bool
	for _, p := range profs {
		if p.Count <= 0 {
			t.Errorf("op %s count=%d", p.Func, p.Count)
		}
		if p.Cached > 0 {
			sawCached = true
		}
		if p.Allocs > 0 {
			sawAllocs = true
		}
	}
	_ = sawCached // a single run may or may not hit the cache
	if !sawAllocs {
		t.Error("profiling on but no op recorded allocations")
	}
	// Sorted by total wall, descending.
	for i := 1; i < len(profs); i++ {
		if profs[i].Wall > profs[i-1].Wall {
			t.Errorf("profiles not sorted by wall time at %d", i)
		}
	}
}

func TestStreamedSuiteMatchesBatch(t *testing.T) {
	batch := fastSuite(t, []string{"A13", "A14"}, []string{"F1"})
	batch.RunSameDataset()
	streamed, err := New(Config{
		Scale: 0.3, Seed: 1, Stream: true, ChunkRows: 64,
		AlgIDs:     []string{"A13", "A14"},
		DatasetIDs: []string{"F1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	streamed.RunSameDataset()
	if len(batch.Store.Results) != len(streamed.Store.Results) {
		t.Fatalf("result counts differ: batch %d, streamed %d",
			len(batch.Store.Results), len(streamed.Store.Results))
	}
	for i, b := range batch.Store.Results {
		s := streamed.Store.Results[i]
		b.Wall, s.Wall = 0, 0 // timing is the only field allowed to differ
		if !reflect.DeepEqual(b, s) {
			t.Errorf("result %d differs:\nbatch:    %+v\nstreamed: %+v", i, b, s)
		}
	}
	m := streamed.Store.Meta.Manifest
	if m == nil || !m.Stream || m.ChunkRows != 64 {
		t.Errorf("manifest does not record streaming config: %+v", m)
	}

	// The staged pipeline must land on the same results and record its
	// shape (plus the chunk byte bound) in the manifest.
	piped, err := New(Config{
		Scale: 0.3, Seed: 1, Stream: true, ChunkRows: 64,
		ChunkBytes: 1 << 20, PipelineDepth: 2, StreamWorkers: 2,
		AlgIDs:     []string{"A13", "A14"},
		DatasetIDs: []string{"F1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	piped.RunSameDataset()
	if len(batch.Store.Results) != len(piped.Store.Results) {
		t.Fatalf("result counts differ: batch %d, pipelined %d",
			len(batch.Store.Results), len(piped.Store.Results))
	}
	for i, b := range batch.Store.Results {
		p := piped.Store.Results[i]
		b.Wall, p.Wall = 0, 0
		if !reflect.DeepEqual(b, p) {
			t.Errorf("result %d differs:\nbatch:     %+v\npipelined: %+v", i, b, p)
		}
	}
	pm := piped.Store.Meta.Manifest
	if pm == nil || pm.ChunkBytes != 1<<20 || pm.PipelineDepth != 2 || pm.StreamWorkers != 2 {
		t.Errorf("manifest does not record pipeline config: %+v", pm)
	}
}
