package benchsuite

import (
	"sort"
	"strconv"

	"lumen/internal/report"
)

// LitEntry is one row of the paper's Table 1: an algorithm as published,
// with the datasets its own paper evaluated on. This metadata drives
// Fig. 1a: two algorithms are directly comparable only when their papers
// share at least one evaluation dataset.
type LitEntry struct {
	Alg      string
	Model    string
	Gran     string
	Datasets []string // dataset identities as named by the original papers
	Reported string
}

// Literature reproduces Table 1.
func Literature() []LitEntry {
	return []LitEntry{
		{"ML for DDoS [18]", "Ensemble of RF, SVM, DT and KNN", "Packet", []string{"custom-ddos"}, "Precision: 99.9%"},
		{"Efficient One-Class SVM [40]", "OCSVM and GMM", "Packet", []string{"ctu-iot", "unb-ids", "mawi"}, "AUC: 62-99%"},
		{"Kitsune [27]", "Stacked Auto-Encoders", "Packet", []string{"kitsune-camera"}, "Precision: 99%"},
		{"Nprint [20]", "AutoML", "Packet", []string{"cicids2017", "netml"}, "Balanced Precision: 86-99%"},
		{"Smart Detect [24]", "Random Forest", "Unidirectional Flow", []string{"cicids2017", "cic-dos"}, "Precision: 80-96.1%"},
		// Bhatia et al. combine publicly available benign traces (MAWI)
		// with private attack traces (the paper's footnote 2).
		{"Network Centric AD [15]", "Auto Encoder", "Flow: srcIP, dstIP", []string{"mawi", "custom-nokia-attacks"}, "Precision: 99%"},
		{"Industrial IoT [41]", "Random Forest", "Connection", []string{"custom-scada"}, "Sensitivity: 97%"},
		{"Smart Home IDS [11]", "Random Forest", "Packet", []string{"custom-smarthome"}, "Precision: 97%"},
		{"Ensemble [30]", "NB, DT, RF and DNN", "Unidirectional Flow", []string{"unsw-nb15", "nims"}, "Precision: 98.29-99.54%"},
		{"Bayesian Traffic Classification [28]", "Bayes Classifier", "Connection", []string{"custom-moore"}, "Precision: 96.29%"},
		{"Zeek Logs [13]", "RF", "Connection", []string{"ctu-iot"}, "Precision: 97%"},
	}
}

// Table1 renders the literature survey.
func Table1() string {
	t := &report.Table{Header: []string{"Algorithm", "ML Model", "Granularity", "Datasets", "Reported"}}
	for _, e := range Literature() {
		t.Add(e.Alg, e.Model, e.Gran, join(e.Datasets), e.Reported)
	}
	return t.String()
}

// Fig1a counts, for each published algorithm, how many other algorithms
// share at least one evaluation dataset — the number of possible direct
// comparisons. For half the surveyed algorithms this is zero, the
// paper's motivating observation.
func Fig1a() *report.Table {
	lit := Literature()
	counts := make([]int, len(lit))
	for i := range lit {
		for j := range lit {
			if i == j {
				continue
			}
			if sharesDataset(lit[i].Datasets, lit[j].Datasets) {
				counts[i]++
			}
		}
	}
	t := &report.Table{Header: []string{"Algorithm", "PossibleComparisons"}}
	type row struct {
		name string
		n    int
	}
	rows := make([]row, len(lit))
	for i, e := range lit {
		rows[i] = row{e.Alg, counts[i]}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].n > rows[b].n })
	for _, r := range rows {
		t.Add(r.name, strconv.Itoa(r.n))
	}
	return t
}

// Fig1aZeroFraction returns the fraction of algorithms with no possible
// direct comparison (the paper reports one half).
func Fig1aZeroFraction() float64 {
	lit := Literature()
	zero := 0
	for i := range lit {
		any := false
		for j := range lit {
			if i != j && sharesDataset(lit[i].Datasets, lit[j].Datasets) {
				any = true
				break
			}
		}
		if !any {
			zero++
		}
	}
	return float64(zero) / float64(len(lit))
}

func sharesDataset(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
