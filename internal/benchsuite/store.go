package benchsuite

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// Score is a precision/recall pair over N evaluated units.
type Score struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	N         int     `json:"n"`
}

// RunResult is one (algorithm, train dataset, test dataset) evaluation —
// the row type of Lumen's query-friendly result store.
type RunResult struct {
	Alg       string           `json:"alg"`
	TrainDS   string           `json:"train"`
	TestDS    string           `json:"test"`
	Faithful  bool             `json:"faithful"`
	NUnits    int              `json:"n_units"`
	Precision float64          `json:"precision"`
	Recall    float64          `json:"recall"`
	Accuracy  float64          `json:"accuracy"`
	F1        float64          `json:"f1"`
	AUC       float64          `json:"auc"`
	PerAttack map[string]Score `json:"per_attack,omitempty"`
	// Wall is the end-to-end train+test time of this run.
	Wall time.Duration `json:"wall_ns,omitempty"`
	Err  string        `json:"err,omitempty"`
}

// Same reports whether train and test come from the same dataset.
func (r RunResult) Same() bool { return r.TrainDS == r.TestDS }

// OK reports whether the run completed.
func (r RunResult) OK() bool { return r.Err == "" }

// Meta summarizes how the worker pool performed across every runAll
// batch: total batch wall time, summed per-run busy time, and the
// resulting worker utilization (Busy / (Wall × Workers), 1.0 = every
// worker busy the whole time). Manifest records the configuration that
// produced the results, so a saved store is self-describing.
type Meta struct {
	Runs        int           `json:"runs,omitempty"`
	Workers     int           `json:"workers,omitempty"`
	Wall        time.Duration `json:"wall_ns,omitempty"`
	Busy        time.Duration `json:"busy_ns,omitempty"`
	Utilization float64       `json:"utilization,omitempty"`
	Manifest    *Manifest     `json:"manifest,omitempty"`
}

// Manifest is the run manifest embedded in every saved Store: the scoped
// algorithm and dataset IDs, the effective suite configuration, and the
// Go runtime it executed under.
type Manifest struct {
	Scale        float64  `json:"scale"`
	Seed         int64    `json:"seed"`
	Algorithms   []string `json:"algorithms"`
	Datasets     []string `json:"datasets"`
	Workers      int      `json:"workers"`
	Cache        bool     `json:"cache"`
	CacheEntries int      `json:"cache_entries,omitempty"`
	Profile      bool     `json:"profile,omitempty"`
	Stream       bool     `json:"stream,omitempty"`
	ChunkRows    int      `json:"chunk_rows,omitempty"`
	ChunkBytes   int      `json:"chunk_bytes,omitempty"`
	// PipelineDepth, StreamWorkers and StreamShards record the
	// staged-pipeline shape of streamed runs (0 when the sequential chunk
	// loop ran / the sink was unsharded).
	PipelineDepth int    `json:"pipeline_depth,omitempty"`
	StreamWorkers int    `json:"stream_workers,omitempty"`
	StreamShards  int    `json:"stream_shards,omitempty"`
	GoVersion     string `json:"go_version"`
	MaxProcs      int    `json:"max_procs"`
}

// Store accumulates results and answers the queries the figures need.
// It serializes to JSON ("Lumen stores all results in a query-friendly
// format").
type Store struct {
	Results []RunResult `json:"results"`
	Meta    Meta        `json:"meta,omitempty"`
}

// Filter returns the results satisfying pred.
func (s *Store) Filter(pred func(RunResult) bool) []RunResult {
	var out []RunResult
	for _, r := range s.Results {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ByAlg groups completed results per algorithm ID.
func (s *Store) ByAlg() map[string][]RunResult {
	out := map[string][]RunResult{}
	for _, r := range s.Results {
		if r.OK() {
			out[r.Alg] = append(out[r.Alg], r)
		}
	}
	return out
}

// Algs returns the algorithm IDs present, sorted.
func (s *Store) Algs() []string {
	set := map[string]bool{}
	for _, r := range s.Results {
		set[r.Alg] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// BestPerPair returns, for every (train, test) pair, the maximum
// precision and recall any algorithm achieved (the Fig. 7 reference
// lines).
func (s *Store) BestPerPair() map[[2]string][2]float64 {
	out := map[[2]string][2]float64{}
	for _, r := range s.Results {
		if !r.OK() {
			continue
		}
		k := [2]string{r.TrainDS, r.TestDS}
		best := out[k]
		if r.Precision > best[0] {
			best[0] = r.Precision
		}
		if r.Recall > best[1] {
			best[1] = r.Recall
		}
		out[k] = best
	}
	return out
}

// Save writes the store as indented JSON.
func (s *Store) Save(path string) error {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a store written by Save.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Store
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
