package benchsuite

import (
	"strings"
	"testing"

	"lumen/internal/obs"
)

// TestSuiteSpanTreeUnderWorkers runs a multi-worker suite with tracing
// and metrics on and checks the span tree: suite → batch → run → op,
// with run spans on per-worker tracks and time ranges contained in
// their parents. Run under -race this also pins the concurrency
// contract of Span.Child/ChildOn from pool workers.
func TestSuiteSpanTreeUnderWorkers(t *testing.T) {
	tr := obs.NewTracer()
	met := obs.NewMetrics()
	s, err := New(Config{
		Scale:      0.3,
		Seed:       1,
		AlgIDs:     []string{"A13", "A14"},
		DatasetIDs: []string{"F1", "F4"},
		Workers:    4,
		Tracer:     tr,
		Metrics:    met,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunSameDataset()
	s.Finish()

	spans := tr.Spans()
	byID := map[int64]obs.SpanRecord{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var suite, batch *obs.SpanRecord
	var runs, ops int
	for i := range spans {
		sp := &spans[i]
		switch {
		case sp.Name == "suite":
			suite = sp
		case strings.HasPrefix(sp.Name, "batch:"):
			batch = sp
		case strings.HasPrefix(sp.Name, "run:"):
			runs++
			if sp.TID < 1 {
				t.Errorf("run span %q on track %d, want a worker track >= 1", sp.Name, sp.TID)
			}
			if sp.Attrs["alg"] == nil || sp.Attrs["train"] == nil || sp.Attrs["worker"] == nil {
				t.Errorf("run span %q missing attrs: %v", sp.Name, sp.Attrs)
			}
		case strings.HasPrefix(sp.Name, "op:"):
			ops++
		}
	}
	if suite == nil || batch == nil {
		t.Fatalf("missing suite/batch spans (suite=%v batch=%v)", suite, batch)
	}
	if batch.Parent != suite.ID {
		t.Errorf("batch parent = %d, want suite %d", batch.Parent, suite.ID)
	}
	// A13/A14 are connection-granularity and run on both datasets.
	if runs != 4 {
		t.Errorf("got %d run spans, want 4", runs)
	}
	if ops == 0 {
		t.Error("no op spans recorded beneath runs")
	}
	// Structural check: every non-root span's parent exists, and the
	// parent's [start, end] contains the child's — except retroactive
	// epoch spans, whose timing is reported by the model, and train/test
	// phase spans racing the clock at microsecond scale.
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		p, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("span %q has unknown parent %d", sp.Name, sp.Parent)
			continue
		}
		if strings.HasPrefix(sp.Name, "epoch:") {
			continue
		}
		const slack = int64(1e6) // 1ms: span ends are recorded, not atomic
		if sp.StartNS+slack < p.StartNS || sp.StartNS+sp.DurNS > p.StartNS+p.DurNS+slack {
			t.Errorf("span %q [%d,%d] not inside parent %q [%d,%d]",
				sp.Name, sp.StartNS, sp.StartNS+sp.DurNS, p.Name, p.StartNS, p.StartNS+p.DurNS)
		}
	}

	// Suite metrics must reflect the batch.
	if got := met.Counter("lumen_runs_total", "").Value(); got != 4 {
		t.Errorf("lumen_runs_total = %d, want 4", got)
	}
	if got := met.Counter("lumen_run_errors_total", "").Value(); got != 0 {
		t.Errorf("lumen_run_errors_total = %d, want 0", got)
	}
	if w := met.Gauge("lumen_suite_workers", "").Value(); w != 4 {
		t.Errorf("lumen_suite_workers = %v, want 4", w)
	}
	u := met.Gauge("lumen_worker_utilization", "").Value()
	if u <= 0 || u > 1 {
		t.Errorf("lumen_worker_utilization = %v, want (0, 1]", u)
	}
	// Cache metrics flow through from core.
	st := s.CacheStats()
	if got := met.Counter("lumen_cache_misses_total", "").Value(); int(got) != st.Misses {
		t.Errorf("lumen_cache_misses_total = %d, want %d", got, st.Misses)
	}

	// The exported Chrome trace must be consumable.
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"run:A13 F1→F1"`) {
		t.Error("chrome trace missing run span name")
	}
}

func TestStoreManifest(t *testing.T) {
	s, err := New(Config{Scale: 0.3, Seed: 7, AlgIDs: []string{"A14"}, DatasetIDs: []string{"F1"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Store.Meta.Manifest
	if m == nil {
		t.Fatal("Store.Meta.Manifest not set by New")
	}
	if m.Seed != 7 || m.Scale != 0.3 || m.Workers != 2 || !m.Cache {
		t.Errorf("manifest config wrong: %+v", m)
	}
	if len(m.Algorithms) != 1 || m.Algorithms[0] != "A14" {
		t.Errorf("manifest algorithms = %v", m.Algorithms)
	}
	if len(m.Datasets) != 1 || m.Datasets[0] != "F1" {
		t.Errorf("manifest datasets = %v", m.Datasets)
	}
	if m.GoVersion == "" || m.MaxProcs < 1 {
		t.Errorf("manifest runtime info missing: %+v", m)
	}

	// Round-trip through Save/Load.
	path := t.TempDir() + "/store.json"
	if err := s.Store.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	lm := loaded.Meta.Manifest
	if lm == nil || lm.Seed != 7 || lm.GoVersion != m.GoVersion {
		t.Errorf("manifest did not round-trip: %+v", lm)
	}
}

// TestSuiteWithoutObsIsUnchanged guards the disabled path: no tracer, no
// metrics, no root span — and results still come out.
func TestSuiteWithoutObsIsUnchanged(t *testing.T) {
	s, err := New(Config{Scale: 0.3, Seed: 1, AlgIDs: []string{"A14"}, DatasetIDs: []string{"F1"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.root != nil {
		t.Fatal("root span created without a tracer")
	}
	s.RunSameDataset()
	s.Finish() // must be safe with no tracer
	if len(s.Store.Results) != 1 || !s.Store.Results[0].OK() {
		t.Fatalf("results wrong without obs: %+v", s.Store.Results)
	}
}
