// Package benchsuite is Lumen's benchmarking suite: it runs every
// algorithm against every dataset it can faithfully run on — same-dataset
// and cross-dataset — stores the scores in a query-friendly store, and
// regenerates each figure of the paper's evaluation (Figs. 1, 5–10, the
// §5.2 validation and the §5.4 improvement experiments).
package benchsuite

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"lumen/internal/algorithms"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
	"lumen/internal/obs"
)

// Config scopes a suite run ("the user can scope the comparison on a
// subset of algorithms or datasets").
type Config struct {
	// Scale of the synthesized datasets; 0 means 0.6.
	Scale float64
	// Seed drives model seeds.
	Seed int64
	// AlgIDs restricts the algorithms (nil = all 16).
	AlgIDs []string
	// DatasetIDs restricts the datasets (nil = all 15).
	DatasetIDs []string
	// Workers bounds run parallelism; 0 means GOMAXPROCS.
	Workers int
	// NoCache disables the shared intermediate-result cache (used by the
	// ablation benchmarks; the paper's evaluation pipeline shares
	// intermediates across algorithms).
	NoCache bool
	// CacheEntries bounds the shared cache's entry count with LRU
	// eviction; 0 means unbounded.
	CacheEntries int
	// Profile enables per-op allocation sampling on every engine
	// (core.Engine.Profiling) and per-op profile aggregation across runs.
	// Wall-clock per-op timing is collected regardless.
	Profile bool
	// Stream executes every run through the chunked streaming engine
	// (core.Engine.TrainStream/TestStream) instead of batch runs. Results
	// are bit-identical to batch; peak memory on the inference side scales
	// with the chunk size instead of the trace size. Streamed runs bypass
	// the shared intermediate-result cache.
	Stream bool
	// ChunkRows bounds the packets per streamed chunk when Stream is set
	// (0 = whole trace in one chunk).
	ChunkRows int
	// ChunkBytes bounds the wire bytes per streamed chunk when Stream is
	// set (0 = no byte bound); whichever of ChunkRows/ChunkBytes trips
	// first closes the chunk.
	ChunkBytes int
	// PipelineDepth, when > 0 with Stream, runs each engine's streaming
	// pass as a staged bounded-channel pipeline with this many decoded
	// chunks in flight (see core.StreamConfig).
	PipelineDepth int
	// StreamWorkers, when > 1 with Stream, fans the order-free row-local
	// ops of each streamed chunk across this many goroutines.
	StreamWorkers int
	// StreamShards, when > 1 with Stream, splits each engine's stateful
	// sink stage into this many flow-hash lanes (see core.StreamConfig).
	StreamShards int
	// Tracer, when non-nil, records a span tree for the whole suite: a
	// root "suite" span, one batch span per RunSameDataset/RunCrossDataset
	// call, one run span per (alg, train, test) on the executing worker's
	// track, per-op spans beneath those, and model-fit epoch spans. Call
	// Suite.Finish before exporting so the root span is closed.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives suite counters and gauges
	// (lumen_runs_total, lumen_run_errors_total, lumen_run_wall_seconds,
	// lumen_suite_workers, lumen_worker_utilization) plus the cache, op
	// and fit metrics of the layers below.
	Metrics *obs.Metrics
}

func (c Config) scale() float64 {
	if c.Scale == 0 {
		return 0.6
	}
	return c.Scale
}

// Suite caches generated datasets and their train/test splits, and
// accumulates results.
type Suite struct {
	cfg    Config
	algs   []algorithms.Algorithm
	splits map[string]*split
	order  []string // dataset IDs in registry order
	cache  *core.Cache
	root   *obs.Span // "suite" span; nil when tracing is off
	Store  *Store

	profMu sync.Mutex
	prof   map[string]*OpProfile
}

// OpProfile aggregates the cost of one operation across every run of the
// suite: how often it executed, how often the shared cache served it,
// and the total wall time and (when profiling is on) allocated bytes.
type OpProfile struct {
	Func   string        `json:"func"`
	Count  int           `json:"count"`
	Cached int           `json:"cached"`
	Wall   time.Duration `json:"wall_ns"`
	Allocs uint64        `json:"allocs_bytes"`
}

// split holds one dataset's train/test halves. The split interleaves
// packets (even → train, odd → test) so both halves cover the same time
// span and attack phases.
type split struct {
	spec  dataset.Spec
	full  *dataset.Labeled
	train *dataset.Labeled
	test  *dataset.Labeled
}

// New builds a suite: datasets are generated eagerly (they are shared
// across runs — the intermediate-reuse optimization the paper describes).
// A scope naming an ID absent from the registry is an error, not a
// silently smaller suite — a typo'd ID among valid ones must not shrink
// the comparison without warning.
func New(cfg Config) (*Suite, error) {
	s := &Suite{cfg: cfg, splits: map[string]*split{}, Store: &Store{}, prof: map[string]*OpProfile{}}
	if !cfg.NoCache {
		s.cache = core.NewCache()
		s.cache.SetLimit(cfg.CacheEntries)
		s.cache.SetMetrics(cfg.Metrics)
	}
	dsIDs := make([]string, 0, len(dataset.Registry()))
	for _, spec := range dataset.Registry() {
		dsIDs = append(dsIDs, spec.ID)
	}
	want, err := idSet(cfg.DatasetIDs, dsIDs, "dataset")
	if err != nil {
		return nil, err
	}
	for _, spec := range dataset.Registry() {
		if len(want) > 0 && !want[spec.ID] {
			continue
		}
		full := spec.Generate(cfg.scale())
		tr, te := InterleaveSplit(full)
		s.splits[spec.ID] = &split{spec: spec, full: full, train: tr, test: te}
		s.order = append(s.order, spec.ID)
	}
	if len(s.order) == 0 {
		return nil, fmt.Errorf("benchsuite: no datasets selected")
	}
	algIDs := make([]string, 0, len(algorithms.All()))
	for _, a := range algorithms.All() {
		algIDs = append(algIDs, a.ID)
	}
	wantAlg, err := idSet(cfg.AlgIDs, algIDs, "algorithm")
	if err != nil {
		return nil, err
	}
	for _, a := range algorithms.All() {
		if len(wantAlg) > 0 && !wantAlg[a.ID] {
			continue
		}
		s.algs = append(s.algs, a)
	}
	if len(s.algs) == 0 {
		return nil, fmt.Errorf("benchsuite: no algorithms selected")
	}
	s.Store.Meta.Manifest = s.manifest()
	if cfg.Tracer != nil {
		s.root = cfg.Tracer.Start("suite", 0)
		s.root.Set("algorithms", len(s.algs))
		s.root.Set("datasets", len(s.order))
		s.root.Set("scale", cfg.scale())
		s.root.Set("seed", cfg.Seed)
	}
	return s, nil
}

// manifest captures the suite's full configuration for the result store,
// so saved results are self-describing ("which flags produced this?").
func (s *Suite) manifest() *Manifest {
	m := &Manifest{
		Scale:         s.cfg.scale(),
		Seed:          s.cfg.Seed,
		Workers:       s.cfg.Workers,
		Cache:         !s.cfg.NoCache,
		CacheEntries:  s.cfg.CacheEntries,
		Profile:       s.cfg.Profile,
		Stream:        s.cfg.Stream,
		ChunkRows:     s.cfg.ChunkRows,
		ChunkBytes:    s.cfg.ChunkBytes,
		PipelineDepth: s.cfg.PipelineDepth,
		StreamWorkers: s.cfg.StreamWorkers,
		StreamShards:  s.cfg.StreamShards,
		GoVersion:     runtime.Version(),
		MaxProcs:      runtime.GOMAXPROCS(0),
	}
	if m.Workers == 0 {
		m.Workers = runtime.GOMAXPROCS(0)
	}
	for _, a := range s.algs {
		m.Algorithms = append(m.Algorithms, a.ID)
	}
	m.Datasets = append(m.Datasets, s.order...)
	return m
}

// Finish closes the suite's root span. Call it once, after the last Run*
// call and before exporting the tracer; it is a no-op without a tracer.
func (s *Suite) Finish() {
	s.root.End()
}

// idSet builds a membership set from a scope list, rejecting (and
// naming) any ID that is not in the registry's known list.
func idSet(scope, known []string, kind string) (map[string]bool, error) {
	knownSet := make(map[string]bool, len(known))
	for _, id := range known {
		knownSet[id] = true
	}
	set := map[string]bool{}
	var unknown []string
	for _, id := range scope {
		if !knownSet[id] {
			unknown = append(unknown, id)
			continue
		}
		set[id] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("benchsuite: unknown %s IDs %v (known: %v)", kind, unknown, known)
	}
	return set, nil
}

// Algorithms returns the algorithms in scope.
func (s *Suite) Algorithms() []algorithms.Algorithm { return s.algs }

// DatasetIDs returns the datasets in scope, in registry order.
func (s *Suite) DatasetIDs() []string { return append([]string(nil), s.order...) }

// Dataset returns a generated dataset by ID (the full, unsplit trace).
func (s *Suite) Dataset(id string) *dataset.Labeled {
	if sp, ok := s.splits[id]; ok {
		return sp.full
	}
	return nil
}

// InterleaveSplit splits a dataset into train/test halves by alternating
// packets, preserving time order and attack coverage on both sides.
func InterleaveSplit(ds *dataset.Labeled) (train, test *dataset.Labeled) {
	train = &dataset.Labeled{Name: ds.Name + "/train", Granularity: ds.Granularity, Link: ds.Link}
	test = &dataset.Labeled{Name: ds.Name + "/test", Granularity: ds.Granularity, Link: ds.Link}
	for i := range ds.Packets {
		dst := train
		if i%2 == 1 {
			dst = test
		}
		dst.Packets = append(dst.Packets, ds.Packets[i])
		dst.Labels = append(dst.Labels, ds.Labels[i])
		dst.Attacks = append(dst.Attacks, ds.Attacks[i])
	}
	return train, test
}

// CanRun reports whether alg can faithfully run with the given train and
// test datasets: granularity compatibility (paper §2.1) plus the IP-layer
// requirement that rules everything but Kitsune out on 802.11 captures.
func CanRun(alg algorithms.Algorithm, train, test *split) bool {
	g := alg.Granularity()
	if !dataset.CanFaithfullyRun(g, train.spec.Granularity) ||
		!dataset.CanFaithfullyRun(g, test.spec.Granularity) {
		return false
	}
	if !alg.NoIPNeeded && (train.full.Link == netpkt.LinkDot11 || test.full.Link == netpkt.LinkDot11) {
		return false
	}
	return true
}

// runOne trains alg on train packets and evaluates on test packets.
// span, when non-nil, is this run's span: train and test get child spans
// beneath it, and engine op spans nest below those.
func (s *Suite) runOne(alg algorithms.Algorithm, trainID, testID string, trainDS, testDS *dataset.Labeled, span *obs.Span) (rr RunResult) {
	rr = RunResult{Alg: alg.ID, TrainDS: trainID, TestDS: testID, Faithful: true}
	start := time.Now()
	defer func() {
		rr.Wall = time.Since(start)
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Counter("lumen_runs_total",
				"Completed (alg, train, test) evaluations, including failed ones.").Inc()
			if rr.Err != "" {
				s.cfg.Metrics.Counter("lumen_run_errors_total",
					"Evaluations that ended in a pipeline error.").Inc()
			}
			s.cfg.Metrics.Histogram("lumen_run_wall_seconds",
				"End-to-end train+test wall time per evaluation.", nil).
				Observe(rr.Wall.Seconds())
		}
	}()
	eng := core.NewEngine(alg.Pipeline)
	eng.Profiling = s.cfg.Profile
	eng.Metrics = s.cfg.Metrics
	if s.cache != nil {
		eng.SetCache(s.cache)
	}
	eng.Seed = s.cfg.Seed + int64(hash(alg.ID+trainID+testID))
	streamCfg := core.StreamConfig{
		ChunkRows:     s.cfg.ChunkRows,
		ChunkBytes:    s.cfg.ChunkBytes,
		PipelineDepth: s.cfg.PipelineDepth,
		Workers:       s.cfg.StreamWorkers,
		Shards:        s.cfg.StreamShards,
	}
	if span != nil {
		eng.Span = span.Child("train")
	}
	var err error
	if s.cfg.Stream {
		err = eng.TrainStream(trainDS, streamCfg)
	} else {
		err = eng.Train(trainDS)
	}
	eng.Span.End()
	s.recordProfile(eng.Profile)
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	if span != nil {
		eng.Span = span.Child("test")
	}
	var res *core.EvalResult
	if s.cfg.Stream {
		res, err = eng.TestStream(testDS, streamCfg)
	} else {
		res, err = eng.Test(testDS)
	}
	eng.Span.End()
	s.recordProfile(eng.Profile)
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	rr.NUnits = len(res.Truth)
	rr.Precision = mlkit.Precision(res.Truth, res.Pred)
	rr.Recall = mlkit.Recall(res.Truth, res.Pred)
	rr.Accuracy = mlkit.Accuracy(res.Truth, res.Pred)
	rr.F1 = mlkit.F1Score(res.Truth, res.Pred)
	if res.Scores != nil {
		rr.AUC = mlkit.AUC(res.Truth, res.Scores)
	} else {
		rr.AUC = 0.5
	}
	rr.PerAttack = perAttackScores(res)
	return rr
}

// perAttackScores computes precision/recall restricted to benign units
// plus each single attack (the Fig. 5 cell definition).
func perAttackScores(res *core.EvalResult) map[string]Score {
	attacks := map[string]bool{}
	for _, a := range res.Attacks {
		if a != "" {
			attacks[a] = true
		}
	}
	out := make(map[string]Score, len(attacks))
	for atk := range attacks {
		var truth, pred []int
		for i := range res.Truth {
			if res.Attacks[i] == "" || res.Attacks[i] == atk {
				truth = append(truth, res.Truth[i])
				pred = append(pred, res.Pred[i])
			}
		}
		out[atk] = Score{
			Precision: mlkit.Precision(truth, pred),
			Recall:    mlkit.Recall(truth, pred),
			N:         len(truth),
		}
	}
	return out
}

// task describes one pending run.
type task struct {
	alg             algorithms.Algorithm
	trainID, testID string
	train, test     *dataset.Labeled
}

// runAll executes tasks on a worker pool (the Ray-style parallel
// evaluation of the paper) and appends results to the store, updating
// the store's batch metadata (wall time, busy time, utilization). name
// labels the batch span ("same-dataset" / "cross-dataset") when tracing.
func (s *Suite) runAll(name string, tasks []task) {
	if len(tasks) == 0 {
		return
	}
	workers := s.cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	var batch *obs.Span
	if s.root != nil {
		batch = s.root.Child("batch:" + name)
		batch.Set("tasks", len(tasks))
		batch.Set("workers", workers)
	}
	batchStart := time.Now()
	results := make([]RunResult, len(tasks))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Worker w's run spans render on track w+1 (track 0 is the suite).
		go func(w int) {
			defer wg.Done()
			for i := range ch {
				t := tasks[i]
				var sp *obs.Span
				if batch != nil {
					sp = batch.ChildOn("run:"+t.alg.ID+" "+t.trainID+"→"+t.testID, w+1)
					sp.Set("alg", t.alg.ID)
					sp.Set("train", t.trainID)
					sp.Set("test", t.testID)
					sp.Set("worker", w)
				}
				results[i] = s.runOne(t.alg, t.trainID, t.testID, t.train, t.test, sp)
				if sp != nil {
					if results[i].Err != "" {
						sp.Set("error", results[i].Err)
					}
					sp.End()
				}
			}
		}(w)
	}
	for i := range tasks {
		ch <- i
	}
	close(ch)
	wg.Wait()
	s.Store.Results = append(s.Store.Results, results...)

	meta := &s.Store.Meta
	meta.Runs += len(tasks)
	if workers > meta.Workers {
		meta.Workers = workers
	}
	meta.Wall += time.Since(batchStart)
	for i := range results {
		meta.Busy += results[i].Wall
	}
	if meta.Workers > 0 && meta.Wall > 0 {
		meta.Utilization = float64(meta.Busy) / (float64(meta.Wall) * float64(meta.Workers))
	}
	if batch != nil {
		batch.Set("utilization", meta.Utilization)
		batch.End()
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("lumen_suite_workers",
			"Worker-pool size of the most recent batch.").Set(float64(workers))
		s.cfg.Metrics.Gauge("lumen_worker_utilization",
			"Cumulative worker utilization: busy time / (wall time × workers).").
			Set(meta.Utilization)
	}
}

// RunSameDataset evaluates every algorithm on every faithful dataset
// with train and test halves drawn from the same dataset (Figs. 1b, 8).
func (s *Suite) RunSameDataset() {
	var tasks []task
	for _, alg := range s.algs {
		for _, id := range s.order {
			sp := s.splits[id]
			if !CanRun(alg, sp, sp) {
				continue
			}
			tasks = append(tasks, task{alg, id, id, sp.train, sp.test})
		}
	}
	s.runAll("same-dataset", tasks)
}

// RunCrossDataset evaluates every algorithm on every ordered pair of
// distinct faithful datasets: train on A's train half, test on B's test
// half (Figs. 1c, 9, 10).
func (s *Suite) RunCrossDataset() {
	var tasks []task
	for _, alg := range s.algs {
		for _, trID := range s.order {
			for _, teID := range s.order {
				if trID == teID {
					continue
				}
				trSp, teSp := s.splits[trID], s.splits[teID]
				if !CanRun(alg, trSp, teSp) {
					continue
				}
				tasks = append(tasks, task{alg, trID, teID, trSp.train, teSp.test})
			}
		}
	}
	s.runAll("cross-dataset", tasks)
}

// RunAll runs both evaluation modes.
func (s *Suite) RunAll() {
	s.RunSameDataset()
	s.RunCrossDataset()
}

// MergedConnectionDataset builds the Fig. 6 merged corpus: frac of every
// connection-granularity dataset in scope, split into train/test halves.
func (s *Suite) MergedConnectionDataset(frac float64) (train, test *dataset.Labeled) {
	var trains, tests []*dataset.Labeled
	for _, id := range s.order {
		sp := s.splits[id]
		if sp.spec.Granularity != dataset.ConnectionG {
			continue
		}
		trains = append(trains, sp.train)
		tests = append(tests, sp.test)
	}
	return dataset.Merge("merged/train", frac, trains...),
		dataset.Merge("merged/test", frac, tests...)
}

// sortedAttacks lists the distinct attacks across datasets in scope.
func (s *Suite) sortedAttacks() []string {
	set := map[string]bool{}
	for _, id := range s.order {
		for _, a := range s.splits[id].spec.Attacks {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// recordProfile merges one engine run's per-op stats into the suite's
// cross-run aggregate. Safe to call from worker goroutines.
func (s *Suite) recordProfile(stats []core.OpStats) {
	if len(stats) == 0 {
		return
	}
	s.profMu.Lock()
	defer s.profMu.Unlock()
	for _, st := range stats {
		p := s.prof[st.Func]
		if p == nil {
			p = &OpProfile{Func: st.Func}
			s.prof[st.Func] = p
		}
		p.Count++
		if st.Cached {
			p.Cached++
		}
		p.Wall += st.Wall
		p.Allocs += st.Allocs
	}
}

// OpProfiles returns the per-op cost aggregate across every run so far,
// most expensive (by total wall time) first.
func (s *Suite) OpProfiles() []OpProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	out := make([]OpProfile, 0, len(s.prof))
	for _, p := range s.prof {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// CacheStats reports the shared cache's activity counters (the zero
// value when the cache is disabled).
func (s *Suite) CacheStats() core.CacheStats {
	if s.cache == nil {
		return core.CacheStats{}
	}
	return s.cache.Stats()
}

// hash is FNV-1a over the string, for deterministic per-run seeds.
func hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
