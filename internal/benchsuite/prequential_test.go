package benchsuite

import (
	"testing"
	"time"
)

// TestPrequentialDriftStory pins the headline behavior of the drifting
// benchmark: the static arm's windowed F1 decays once the traffic
// distribution shifts, the prequential online arm holds, the daemon
// retrain arm recovers through a promoted hot swap, and no arm drops a
// verdict.
func TestPrequentialDriftStory(t *testing.T) {
	rep, err := RunPrequential(PrequentialConfig{
		Seed: 7, RetrainPacing: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	arms := map[string]PrequentialArm{}
	for _, a := range rep.Arms {
		arms[a.Name] = a
		t.Logf("%-8s overall %.3f pre %.3f post %.3f drift %d verdicts %d gen %d swap %q disagree %.3f",
			a.Name, a.OverallF1, a.PreDriftF1, a.PostDriftF1, a.DriftEvents, a.Verdicts,
			a.Generation, a.SwapOutcome, a.ShadowDisagree)
		if a.Verdicts != rep.StreamRows {
			t.Errorf("%s arm scored %d rows, want %d (dropped chunks)", a.Name, a.Verdicts, rep.StreamRows)
		}
	}
	st, on, rt := arms["static"], arms["online"], arms["retrain"]
	if st.PostDriftF1 >= st.PreDriftF1-0.2 {
		t.Errorf("static arm did not decay: pre %.3f post %.3f", st.PreDriftF1, st.PostDriftF1)
	}
	if on.PostDriftF1 <= st.PostDriftF1+0.2 {
		t.Errorf("online arm did not hold: online post %.3f vs static post %.3f", on.PostDriftF1, st.PostDriftF1)
	}
	if st.DriftEvents == 0 {
		t.Error("drift monitor never fired on the shifted stream")
	}
	if rt.Retrains == 0 {
		t.Error("retrain arm never retrained")
	}
	if rt.Generation < 2 || rt.SwapOutcome != "promoted" {
		t.Errorf("retrain arm did not promote: generation %d, outcome %q", rt.Generation, rt.SwapOutcome)
	}
	if rt.PostDriftF1 <= st.PostDriftF1+0.1 {
		t.Errorf("retrain arm did not recover: retrain post %.3f vs static post %.3f", rt.PostDriftF1, st.PostDriftF1)
	}
}
