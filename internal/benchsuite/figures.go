package benchsuite

import (
	"fmt"
	"sort"

	"lumen/internal/algorithms"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/report"
)

// Fig5 builds the per-attack precision heatmap: cell (algorithm Y,
// attack X) is the mean precision of Y over the same-dataset runs on the
// datasets that contain X; gray (NaN) when no faithful dataset contains
// the attack. Requires RunSameDataset results in the store.
func (s *Suite) Fig5() *report.Heatmap {
	attacks := s.sortedAttacks()
	var rows []string
	for _, a := range s.algs {
		rows = append(rows, a.ID)
	}
	h := report.NewHeatmap("Fig 5: per-attack precision (same-dataset runs)", rows, attacks)
	for _, alg := range s.algs {
		runs := s.Store.Filter(func(r RunResult) bool {
			return r.Alg == alg.ID && r.Same() && r.OK()
		})
		for _, atk := range attacks {
			var sum float64
			var n int
			for _, r := range runs {
				if sc, ok := r.PerAttack[atk]; ok && sc.N > 0 {
					sum += sc.Precision
					n++
				}
			}
			if n > 0 {
				h.Set(alg.ID, atk, sum/float64(n))
			}
		}
	}
	return h
}

// Fig7Row is one algorithm's distance-from-best distribution.
type Fig7Row struct {
	Alg         string
	Granularity string
	PrecDiff    report.Dist
	RecDiff     report.Dist
}

// Fig7 computes, for every algorithm, the distribution of differences
// between the best precision/recall achieved by any algorithm on each
// (train, test) pair and this algorithm's score on the same pair. An
// always-zero row would be a universally optimal algorithm; the paper's
// Observation 1 is that none exists.
func (s *Suite) Fig7() []Fig7Row {
	best := s.Store.BestPerPair()
	var rows []Fig7Row
	for _, alg := range s.algs {
		row := Fig7Row{Alg: alg.ID, Granularity: alg.Granularity().String()}
		for _, r := range s.Store.Results {
			if r.Alg != alg.ID || !r.OK() {
				continue
			}
			b := best[[2]string{r.TrainDS, r.TestDS}]
			row.PrecDiff.Values = append(row.PrecDiff.Values, b[0]-r.Precision)
			row.RecDiff.Values = append(row.RecDiff.Values, b[1]-r.Recall)
		}
		row.PrecDiff.Name = alg.ID
		row.RecDiff.Name = alg.ID
		rows = append(rows, row)
	}
	return rows
}

// Fig8 returns per-algorithm precision and recall distributions over
// same-dataset runs (also the data behind Fig. 1b).
func (s *Suite) Fig8() (prec, rec []report.Dist) {
	return s.distributions(func(r RunResult) bool { return r.Same() })
}

// Fig9 returns the distributions over cross-dataset runs (also Fig. 1c).
func (s *Suite) Fig9() (prec, rec []report.Dist) {
	return s.distributions(func(r RunResult) bool { return !r.Same() })
}

func (s *Suite) distributions(keep func(RunResult) bool) (prec, rec []report.Dist) {
	for _, alg := range s.algs {
		p := report.Dist{Name: alg.ID}
		q := report.Dist{Name: alg.ID}
		for _, r := range s.Store.Results {
			if r.Alg == alg.ID && r.OK() && keep(r) {
				p.Values = append(p.Values, r.Precision)
				q.Values = append(q.Values, r.Recall)
			}
		}
		prec = append(prec, p)
		rec = append(rec, q)
	}
	return prec, rec
}

// Fig10 builds the train×test median matrices: cell (train D1, test D2)
// is the median precision (and recall) across algorithms — Observation 3's
// asymmetric matrix with the hard-to-reach Torii dataset F5.
func (s *Suite) Fig10() (prec, rec *report.Heatmap) {
	ids := s.order
	prec = report.NewHeatmap("Fig 10a: median precision (rows: test, cols: train)", ids, ids)
	rec = report.NewHeatmap("Fig 10b: median recall (rows: test, cols: train)", ids, ids)
	for _, tr := range ids {
		for _, te := range ids {
			var ps, rs []float64
			for _, r := range s.Store.Results {
				if r.OK() && r.TrainDS == tr && r.TestDS == te {
					ps = append(ps, r.Precision)
					rs = append(rs, r.Recall)
				}
			}
			if len(ps) > 0 {
				prec.Set(te, tr, mlkit.Quantile(ps, 0.5))
				rec.Set(te, tr, mlkit.Quantile(rs, 0.5))
			}
		}
	}
	return prec, rec
}

// Obs2 counts the algorithms whose precision (or recall) drops below the
// threshold on at least one dataset, for same- and cross-dataset runs —
// the paper's Observation 2 ("below 20%").
func (s *Suite) Obs2(threshold float64) (samePrecDrop, sameRecDrop, crossPrecDrop, crossRecDrop int) {
	for _, alg := range s.algs {
		var sp, sr, cp, cr bool
		for _, r := range s.Store.Results {
			if r.Alg != alg.ID || !r.OK() {
				continue
			}
			if r.Same() {
				sp = sp || r.Precision < threshold
				sr = sr || r.Recall < threshold
			} else {
				cp = cp || r.Precision < threshold
				cr = cr || r.Recall < threshold
			}
		}
		if sp {
			samePrecDrop++
		}
		if sr {
			sameRecDrop++
		}
		if cp {
			crossPrecDrop++
		}
		if cr {
			crossRecDrop++
		}
	}
	return
}

// Fig6Result holds the improvement experiments: merged-dataset training
// for selected algorithms and the synthesized AM rows, per attack.
type Fig6Result struct {
	Heatmap *report.Heatmap
	// MeanPrecision per row ID.
	MeanPrecision map[string]float64
}

// Fig6 reruns selected connection-level algorithms (A08, A09, A13, A14 —
// the merged-training rows of the figure) trained on the merged corpus,
// plus the Lumen-guided AM01–AM03, and reports per-attack precision on
// the merged test set.
func (s *Suite) Fig6(frac float64) (*Fig6Result, error) {
	if frac <= 0 {
		frac = 0.10 // the paper's "10% of data from each dataset"
	}
	trainDS, testDS := s.MergedConnectionDataset(frac)
	if len(trainDS.Packets) == 0 {
		return nil, fmt.Errorf("benchsuite: no connection datasets in scope for Fig 6")
	}
	mergedRows := []string{"A08", "A09", "A13", "A14"}
	var rows []algorithms.Algorithm
	for _, id := range mergedRows {
		if a, ok := algorithms.Get(id); ok {
			rows = append(rows, a)
		}
	}
	rows = append(rows, algorithms.Modified()...)

	attacks := map[string]bool{}
	for _, a := range testDS.Attacks {
		if a != "" {
			attacks[a] = true
		}
	}
	var attackList []string
	for a := range attacks {
		attackList = append(attackList, a)
	}
	sort.Strings(attackList)

	var rowIDs []string
	for _, a := range rows {
		rowIDs = append(rowIDs, a.ID)
	}
	h := report.NewHeatmap("Fig 6: per-attack precision with merged training + synthesized algorithms", rowIDs, attackList)
	means := map[string]float64{}
	for _, alg := range rows {
		eng := core.NewEngine(alg.Pipeline)
		eng.Seed = s.cfg.Seed + int64(hash(alg.ID+"merged"))
		if err := eng.Train(trainDS); err != nil {
			return nil, fmt.Errorf("fig6: %s: %w", alg.ID, err)
		}
		res, err := eng.Test(testDS)
		if err != nil {
			return nil, fmt.Errorf("fig6: %s: %w", alg.ID, err)
		}
		means[alg.ID] = mlkit.Precision(res.Truth, res.Pred)
		for atk, sc := range perAttackScores(res) {
			h.Set(alg.ID, atk, sc.Precision)
		}
	}
	return &Fig6Result{Heatmap: h, MeanPrecision: means}, nil
}

// Obs5 compares the merged-training mean precision of the Fig. 6 rows
// against the same algorithms' mean same-dataset precision from the
// store, returning the improvement per algorithm (paper: +12–27% for
// merging; the synthesized algorithm adds ~4% on top of the best prior).
func (s *Suite) Obs5(fig6 *Fig6Result) map[string]float64 {
	out := map[string]float64{}
	byAlg := s.Store.ByAlg()
	for id, merged := range fig6.MeanPrecision {
		runs := byAlg[id]
		var sum float64
		var n int
		for _, r := range runs {
			if r.Same() {
				sum += r.Precision
				n++
			}
		}
		if n > 0 {
			out[id] = merged - sum/float64(n)
		}
	}
	return out
}

// SynthesisEval returns an evaluation callback for algorithms.Synthesize:
// mean precision over the connection datasets in scope (train half →
// test half), the benchmarking-suite-in-the-loop search of §5.4.
func (s *Suite) SynthesisEval() func(p *core.Pipeline) float64 {
	var conn []*split
	for _, id := range s.order {
		sp := s.splits[id]
		if sp.spec.Granularity == dataset.ConnectionG {
			conn = append(conn, sp)
		}
	}
	return func(p *core.Pipeline) float64 {
		var sum float64
		var n int
		for _, sp := range conn {
			eng := core.NewEngine(p)
			eng.Seed = s.cfg.Seed + int64(hash(p.Name+sp.spec.ID))
			if err := eng.Train(sp.train); err != nil {
				continue
			}
			res, err := eng.Test(sp.test)
			if err != nil {
				continue
			}
			sum += mlkit.Precision(res.Truth, res.Pred)
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
}
