package benchsuite

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"lumen/internal/core"
	"lumen/internal/daemon"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/obs"
)

// PrequentialConfig scopes one drifting-traffic prequential benchmark:
// a trace whose traffic distribution shifts mid-stream (phase A's
// environment is replaced by phase B's), scored window-by-window under
// three adaptation strategies.
type PrequentialConfig struct {
	// PhaseA / PhaseB are the dataset IDs whose traffic forms the stream
	// before / after the drift point. Defaults: P1 (Mirai) → P4 (ARP
	// MitM). Both must share a link type.
	PhaseA, PhaseB string
	// Scale sizes the synthesized phases; 0 means 1.0. Small scales
	// leave too few post-drift chunks for partial fits to adapt.
	Scale float64
	// Seed drives model seeds and reservoir sampling.
	Seed int64
	// Model is the pipeline's model_type; it must partial-fit natively
	// for the online arm to adapt. 0 means mlp.
	Model string
	// WindowRows is the F1 window and streaming chunk size; 0 means 64.
	WindowRows int
	// RetrainPacing is the per-chunk delay of the daemon arm's source,
	// giving the background fit and shadow phase chunks to land on; 0
	// means 2ms.
	RetrainPacing time.Duration
}

func (c PrequentialConfig) withDefaults() PrequentialConfig {
	if c.PhaseA == "" {
		c.PhaseA = "P1"
	}
	if c.PhaseB == "" {
		c.PhaseB = "P4"
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Model == "" {
		c.Model = "mlp"
	}
	if c.WindowRows <= 0 {
		c.WindowRows = 64
	}
	if c.RetrainPacing <= 0 {
		c.RetrainPacing = 2 * time.Millisecond
	}
	return c
}

// PrequentialPoint is one window of a prequential curve.
type PrequentialPoint struct {
	Window   int     `json:"window"`
	StartRow int     `json:"start_row"`
	Rows     int     `json:"rows"`
	F1       float64 `json:"f1"`
	Accuracy float64 `json:"accuracy"`
}

// PrequentialArm is one adaptation strategy's curve over the drifting
// stream, with its pre/post-drift aggregates and, for the daemon arm,
// the retrain/hot-swap evidence.
type PrequentialArm struct {
	// Name is "static" (warmup model, never updated), "online"
	// (prequential test-then-train partial fit), or "retrain"
	// (drift-triggered background retrain + shadow-gated hot swap via the
	// daemon).
	Name        string             `json:"name"`
	Points      []PrequentialPoint `json:"points"`
	OverallF1   float64            `json:"overall_f1"`
	PreDriftF1  float64            `json:"pre_drift_f1"`
	PostDriftF1 float64            `json:"post_drift_f1"`
	DriftEvents int                `json:"drift_events"`
	// Verdicts counts scored rows; it must equal the stream length
	// (no dropped chunks) in every arm.
	Verdicts int `json:"verdicts"`
	// Retrain-arm evidence: background retrains run, the active model
	// generation at drain (1 = never swapped), and the final shadow
	// divergence of the last decided swap.
	Retrains       int     `json:"retrains,omitempty"`
	Generation     int     `json:"generation,omitempty"`
	SwapOutcome    string  `json:"swap_outcome,omitempty"`
	ShadowDisagree float64 `json:"shadow_disagree,omitempty"`
	ShadowScoreMAD float64 `json:"shadow_score_mad,omitempty"`
}

// PrequentialReport is the full benchmark output (BENCH_PR9.json).
type PrequentialReport struct {
	PhaseA     string           `json:"phase_a"`
	PhaseB     string           `json:"phase_b"`
	Model      string           `json:"model"`
	Scale      float64          `json:"scale"`
	Seed       int64            `json:"seed"`
	WindowRows int              `json:"window_rows"`
	WarmupRows int              `json:"warmup_rows"`
	StreamRows int              `json:"stream_rows"`
	DriftRow   int              `json:"drift_row"`
	Arms       []PrequentialArm `json:"arms"`
}

// DriftScenario synthesizes the drifting trace: a warmup half of phase A
// (interleave-split so both halves cover A's attack phases), then a
// stream of A's other half followed by all of phase B with timestamps
// shifted to continue A's timeline. driftRow is the stream row where
// phase B begins.
func DriftScenario(c PrequentialConfig) (warmup, stream *dataset.Labeled, driftRow int, err error) {
	c = c.withDefaults()
	specA, okA := dataset.Get(c.PhaseA)
	specB, okB := dataset.Get(c.PhaseB)
	if !okA || !okB {
		return nil, nil, 0, fmt.Errorf("benchsuite: unknown phase dataset (%s, %s)", c.PhaseA, c.PhaseB)
	}
	dsA := specA.Generate(c.Scale)
	dsB := specB.Generate(c.Scale)
	if dsA.Link != dsB.Link {
		return nil, nil, 0, fmt.Errorf("benchsuite: drift phases mix link types (%v, %v)", dsA.Link, dsB.Link)
	}
	warmup, streamA := InterleaveSplit(dsA)
	driftRow = len(streamA.Packets)
	stream, err = dataset.Concat(streamA, dsB)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("benchsuite: drift scenario: %w", err)
	}
	stream.Name = c.PhaseA + "+" + c.PhaseB + "/drift"
	stream.Granularity = dataset.Packet
	return warmup, stream, driftRow, nil
}

// prequentialPipeline is the shared packet pipeline of all three arms:
// stateless per-packet features, a z-score scaler fitted on the warmup,
// the model, and a Page-Hinkley monitor on the prediction stream.
func prequentialPipeline(model string) *core.Pipeline {
	return &core.Pipeline{
		Name:        "prequential-" + model,
		Granularity: "packet",
		Ops: []core.OpSpec{
			{Func: "field_extract", Input: []string{core.InputName}, Output: "X",
				Params: map[string]any{"fields": []any{
					"len", "ttl", "proto", "dst_port", "tcp_syn", "payload_len"}}},
			{Func: "normalize", Input: []string{"X"}, Output: "Xn", Params: map[string]any{"kind": "zscore"}},
			{Func: "model", Output: "m", Params: map[string]any{"model_type": model}},
			{Func: "train", Input: []string{"m", "Xn"}, Output: "fit"},
			// Two-sided: the decayed model's failure mode is a score
			// collapse (missed attacks), a mean decrease an upward-only
			// test never sees. Lambda sits above the phase-A burst peaks
			// so in-distribution traffic does not trigger retrains.
			{Func: "drift_detect", Input: []string{"fit"}, Output: "drift",
				Params: map[string]any{"lambda": 15.0, "min_samples": 32, "two_sided": true}},
		},
	}
}

// RunPrequential executes the drifting-traffic benchmark: one warmup fit
// shared by design across arms (same seed, same warmup data), then the
// static, online and retrain arms over the identical stream.
func RunPrequential(c PrequentialConfig) (*PrequentialReport, error) {
	c = c.withDefaults()
	warmup, stream, driftRow, err := DriftScenario(c)
	if err != nil {
		return nil, err
	}
	rep := &PrequentialReport{
		PhaseA: c.PhaseA, PhaseB: c.PhaseB, Model: c.Model,
		Scale: c.Scale, Seed: c.Seed, WindowRows: c.WindowRows,
		WarmupRows: len(warmup.Packets), StreamRows: len(stream.Packets),
		DriftRow: driftRow,
	}
	newEng := func() (*core.Engine, error) {
		eng := core.NewEngine(prequentialPipeline(c.Model))
		eng.Seed = c.Seed
		if err := eng.Train(warmup); err != nil {
			return nil, fmt.Errorf("benchsuite: warmup fit: %w", err)
		}
		return eng, nil
	}

	for _, online := range []bool{false, true} {
		name := "static"
		if online {
			name = "online"
		}
		eng, err := newEng()
		if err != nil {
			return nil, err
		}
		res, err := eng.TestStream(stream, core.StreamConfig{ChunkRows: c.WindowRows, Online: online})
		if err != nil {
			return nil, fmt.Errorf("benchsuite: %s arm: %w", name, err)
		}
		arm := buildArm(name, res.Truth, res.Pred, driftRow, c.WindowRows)
		arm.DriftEvents = eng.LastStream.DriftEvents
		rep.Arms = append(rep.Arms, arm)
	}

	retrain, err := runRetrainArm(c, newEng, stream, driftRow)
	if err != nil {
		return nil, err
	}
	rep.Arms = append(rep.Arms, retrain)
	return rep, nil
}

// runRetrainArm streams the trace through a resident daemon pipeline
// with drift-triggered background retraining and shadow-gated hot swap,
// reconstructing the prequential curve from the alert stream.
func runRetrainArm(c PrequentialConfig, newEng func() (*core.Engine, error), stream *dataset.Labeled, driftRow int) (PrequentialArm, error) {
	var arm PrequentialArm
	eng, err := newEng()
	if err != nil {
		return arm, err
	}
	met := obs.NewMetrics()
	d := daemon.New(daemon.Config{Metrics: met})
	var alerts bytes.Buffer
	p, err := d.Start(daemon.PipeConfig{
		Name:   "prequential",
		Engine: eng,
		Source: daemon.NewPacedSource(dataset.NewSliceSource(stream), c.RetrainPacing),
		Stream: core.StreamConfig{ChunkRows: c.WindowRows},
		Alerts: &alerts,
		Retrain: daemon.RetrainConfig{
			Enabled:        true,
			ReservoirCap:   4096,
			MinRows:        2 * c.WindowRows,
			CooldownChunks: 4,
			Seed:           c.Seed,
			// Refit on fresh post-drift rows only: a uniform all-history
			// reservoir stays dominated by pre-drift traffic right when
			// the drift fires, and a candidate fitted on it would relearn
			// the stale regime.
			FreshData: true,
			// The gate is intentionally wide open: post-drift the candidate
			// is expected to disagree with the decayed active model, and the
			// divergence is reported rather than used to veto promotion.
			Swap: daemon.SwapOptions{AutoDecide: true, ShadowChunks: 2, MaxDisagree: 1.0},
		},
	})
	if err != nil {
		return arm, fmt.Errorf("benchsuite: retrain arm: %w", err)
	}
	<-p.Done()
	if err := p.Drain(); err != nil {
		return arm, fmt.Errorf("benchsuite: retrain arm: %w", err)
	}
	truth := make([]int, 0, len(stream.Packets))
	pred := make([]int, 0, len(stream.Packets))
	sc := bufio.NewScanner(bytes.NewReader(alerts.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var a daemon.Alert
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			return arm, fmt.Errorf("benchsuite: retrain arm: bad alert line: %w", err)
		}
		truth = append(truth, a.Truth)
		pred = append(pred, a.Pred)
	}
	if err := sc.Err(); err != nil {
		return arm, err
	}
	arm = buildArm("retrain", truth, pred, driftRow, c.WindowRows)
	st := p.Status()
	arm.Verdicts = int(st.Verdicts)
	arm.Generation = st.ModelGeneration
	if st.LastSwap != nil {
		arm.SwapOutcome = st.LastSwap.Outcome
		arm.ShadowDisagree = st.LastSwap.DisagreeFrac
		arm.ShadowScoreMAD = st.LastSwap.ScoreMAD
	}
	arm.DriftEvents = int(met.Counter("lumen_drift_events_total",
		"Drift-detector events observed, per pipeline.",
		"pipeline", "prequential").Value())
	for _, outcome := range []string{"ok", "error"} {
		arm.Retrains += int(met.Counter("lumen_retrain_total",
			"Drift-triggered background retrains, by outcome.",
			"pipeline", "prequential", "outcome", outcome).Value())
	}
	return arm, nil
}

// buildArm windows one arm's row-ordered truth/pred streams into the
// prequential curve and its drift-split aggregates.
func buildArm(name string, truth, pred []int, driftRow, window int) PrequentialArm {
	arm := PrequentialArm{Name: name, Verdicts: len(pred)}
	n := len(truth)
	if len(pred) < n {
		n = len(pred)
	}
	for start, w := 0, 0; start < n; start, w = start+window, w+1 {
		end := start + window
		if end > n {
			end = n
		}
		arm.Points = append(arm.Points, PrequentialPoint{
			Window: w, StartRow: start, Rows: end - start,
			F1:       mlkit.F1Score(truth[start:end], pred[start:end]),
			Accuracy: mlkit.Accuracy(truth[start:end], pred[start:end]),
		})
	}
	arm.OverallF1 = mlkit.F1Score(truth[:n], pred[:n])
	if driftRow > 0 && driftRow < n {
		arm.PreDriftF1 = mlkit.F1Score(truth[:driftRow], pred[:driftRow])
		arm.PostDriftF1 = mlkit.F1Score(truth[driftRow:], pred[driftRow:])
	}
	return arm
}
