package benchsuite

import (
	"fmt"

	"lumen/internal/algorithms"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/report"
)

// ValidationRow is one §5.2 correctness check: a Lumen score next to the
// score the original paper reported for (approximately) the same setup.
type ValidationRow struct {
	Case     string
	Metric   string
	Reported float64 // from the original paper, as cited in §5.2
	Measured float64
}

// Validate reproduces the §5.2 validation runs:
//
//	A10 (smartdet) on F1 (CICIDS 2017 DoS):   paper reports 99% precision.
//	A14 (Zeek) on combined F4–F9 (CTU):       paper reports ~99.9%, Lumen 99.6%.
//	A07 (OCSVM) on F0–F2 (CICIDS 2017):       authors report 78.6% AUC, Lumen 66%.
//	A07 (OCSVM) on F4–F9 (CTU):               authors report 75% AUC, Lumen 49.2%.
//
// The absolute numbers here come from the synthetic stand-in corpora, so
// the check is the paper's own: supervised cases land close to the
// reported scores, while the unsupervised OCSVM cases land clearly lower
// than their papers' reports, mirroring the gap Lumen itself measured.
func (s *Suite) Validate() ([]ValidationRow, error) {
	var rows []ValidationRow

	// A10 on F1.
	if sp, ok := s.splits["F1"]; ok {
		p, err := s.trainTestOnce("A10", sp.train, sp.test)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{"A10 (smartdet) on F1 (DoS)", "precision", 0.99, p.precision})
	}
	// A14 on combined CTU (F4-F9).
	ctu := s.combined([]string{"F4", "F5", "F6", "F7", "F8", "F9"})
	if ctu != nil {
		tr, te := InterleaveSplit(ctu)
		p, err := s.trainTest("A14", tr, te)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{"A14 (Zeek) on CTU F4-F9", "precision", 0.996, p.precision})
	}
	// A07 AUC on CICIDS (F0-F2) and CTU (F4-F9).
	cic := s.combined([]string{"F0", "F1", "F2"})
	if cic != nil {
		tr, te := InterleaveSplit(cic)
		p, err := s.trainTest("A07", tr, te)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{"A07 (OCSVM) on CICIDS F0-F2", "auc", 0.66, p.auc})
	}
	if ctu != nil {
		tr, te := InterleaveSplit(ctu)
		p, err := s.trainTest("A07", tr, te)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{"A07 (OCSVM) on CTU F4-F9", "auc", 0.492, p.auc})
	}
	return rows, nil
}

type scored struct {
	precision, recall, auc float64
}

func (s *Suite) trainTestOnce(algID string, train, test *dataset.Labeled) (scored, error) {
	return s.trainTest(algID, train, test)
}

func (s *Suite) trainTest(algID string, train, test *dataset.Labeled) (scored, error) {
	alg, ok := algorithms.Get(algID)
	if !ok {
		return scored{}, fmt.Errorf("benchsuite: unknown algorithm %s", algID)
	}
	eng := core.NewEngine(alg.Pipeline)
	eng.Seed = s.cfg.Seed + int64(hash(algID+train.Name+test.Name))
	if err := eng.Train(train); err != nil {
		return scored{}, err
	}
	res, err := eng.Test(test)
	if err != nil {
		return scored{}, err
	}
	out := scored{
		precision: mlkit.Precision(res.Truth, res.Pred),
		recall:    mlkit.Recall(res.Truth, res.Pred),
		auc:       0.5,
	}
	if res.Scores != nil {
		out.auc = mlkit.AUC(res.Truth, res.Scores)
	}
	return out, nil
}

// combined concatenates full datasets by ID (nil when none in scope).
func (s *Suite) combined(ids []string) *dataset.Labeled {
	var parts []*dataset.Labeled
	for _, id := range ids {
		if sp, ok := s.splits[id]; ok {
			parts = append(parts, sp.full)
		}
	}
	if len(parts) == 0 {
		return nil
	}
	return dataset.Merge("combined", 1.0, parts...)
}

// ValidationTable renders the §5.2 comparison.
func ValidationTable(rows []ValidationRow) string {
	t := &report.Table{Header: []string{"Case", "Metric", "PaperReported", "LumenMeasured"}}
	for _, r := range rows {
		t.Add(r.Case, r.Metric,
			fmt.Sprintf("%.1f%%", r.Reported*100),
			fmt.Sprintf("%.1f%%", r.Measured*100))
	}
	return t.String()
}
