package benchsuite

import (
	"strings"
	"testing"
)

func TestAttackFeatureImportance(t *testing.T) {
	s := fastSuite(t, []string{"A14"}, []string{"F0", "F1", "F5"})
	rows, err := s.AttackFeatureImportance(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no attacks analyzed")
	}
	byAttack := map[string][]string{}
	for _, r := range rows {
		var names []string
		for _, f := range r.Features {
			if f.Importance > 0 {
				names = append(names, f.Name)
			}
		}
		byAttack[r.Attack] = names
		if len(r.Features) > 3 {
			t.Errorf("%s: returned %d features, want <= 3", r.Attack, len(r.Features))
		}
	}
	// The Torii row must attribute to the destination port — the very
	// mechanism behind the F5 asymmetry in Fig. 10.
	if names, ok := byAttack["botnet-torii"]; ok {
		found := false
		for _, n := range names {
			if n == "dst_port" {
				found = true
			}
		}
		if !found {
			t.Errorf("torii top features = %v, want dst_port among them", names)
		}
	} else {
		t.Error("botnet-torii not analyzed")
	}
	out := FeatureImportanceTable(rows)
	if !strings.Contains(out, "Attack") {
		t.Error("table missing header")
	}
}

func TestAttackFeatureImportanceNeedsConnectionData(t *testing.T) {
	s := fastSuite(t, []string{"A06"}, []string{"P2"})
	if _, err := s.AttackFeatureImportance(3); err == nil {
		t.Error("802.11-only scope should fail (no connection datasets)")
	}
}
