package benchsuite

import (
	"fmt"
	"sort"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
	"lumen/internal/report"
)

// AttackFeature is one (attack, feature, importance) finding.
type AttackFeature struct {
	Attack   string
	Features []mlkit.FeatureImportance
}

// AttackFeatureImportance implements the paper's §6 direction
// "understanding the relevant features for each attack type": for every
// attack present in the connection-granularity datasets in scope, it
// trains a random forest on the benign+attack subset of the combined
// corpus and reports the top-k flow features by permutation importance.
func (s *Suite) AttackFeatureImportance(topK int) ([]AttackFeature, error) {
	if topK <= 0 {
		topK = 5
	}
	var parts []*dataset.Labeled
	for _, id := range s.order {
		sp := s.splits[id]
		if sp.spec.Granularity == dataset.ConnectionG {
			parts = append(parts, sp.full)
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("benchsuite: no connection datasets in scope")
	}
	combined := dataset.Merge("importance", 1.0, parts...)
	fs, err := core.ExtractFlowFeatures(combined, dataset.ConnectionG, nil)
	if err != nil {
		return nil, err
	}
	// Redundant features share importance mass and hide each other under
	// permutation; decorrelate first so the ranking is attributable.
	filt := &mlkit.CorrelationFilter{Threshold: 0.9}
	if err := filt.Fit(fs.X); err != nil {
		return nil, err
	}
	fs.X = filt.Transform(fs.X)
	kept := make([]string, len(filt.Keep))
	for i, j := range filt.Keep {
		kept[i] = fs.Names[j]
	}
	fs.Names = kept

	attacks := map[string]bool{}
	for _, a := range fs.Attacks {
		if a != "" {
			attacks[a] = true
		}
	}
	names := make([]string, 0, len(attacks))
	for a := range attacks {
		names = append(names, a)
	}
	sort.Strings(names)

	var out []AttackFeature
	for _, atk := range names {
		var X [][]float64
		var y []int
		for i := range fs.X {
			if fs.Attacks[i] == "" || fs.Attacks[i] == atk {
				X = append(X, fs.X[i])
				y = append(y, fs.Y[i])
			}
		}
		pos := 0
		for _, v := range y {
			pos += v
		}
		if pos < 5 || pos == len(y) {
			continue // too few samples to rank features meaningfully
		}
		// A shallow single tree concentrates its decision on few features,
		// so permutation attribution is crisp (a large forest spreads the
		// decision over redundant alternatives and attributes ~0 to each).
		tree := &mlkit.DecisionTree{MaxDepth: 4, Seed: s.cfg.Seed + int64(hash(atk))}
		if err := tree.Fit(X, y); err != nil {
			return nil, err
		}
		imp, err := mlkit.PermutationImportance(tree, X, y, 3, s.cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AttackFeature{Attack: atk, Features: mlkit.TopFeatures(fs.Names, imp, topK)})
	}
	return out, nil
}

// FeatureImportanceTable renders the per-attack findings.
func FeatureImportanceTable(rows []AttackFeature) string {
	t := &report.Table{Header: []string{"Attack", "TopFeatures (permutation importance)"}}
	for _, r := range rows {
		line := ""
		for i, f := range r.Features {
			if f.Importance <= 0 {
				break
			}
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s (%.2f)", f.Name, f.Importance)
		}
		if line == "" {
			line = "(none above zero)"
		}
		t.Add(r.Attack, line)
	}
	return t.String()
}
