// Package pcap reads and writes classic libpcap capture files (the format
// every dataset the paper benchmarks ships in). It supports microsecond
// and nanosecond timestamp magic in both byte orders on the read side and
// writes little-endian microsecond files, the most widely compatible
// variant.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lumen/internal/netpkt"
)

// BufferPool recycles packet data buffers and chunk packet slices across
// reads, cutting the two per-packet/per-chunk allocations of the decode
// hot loop (the record copy in Reader.Next and the slice growth in
// ReadChunk). It is safe for concurrent use: a streaming consumer may
// return finished chunks from one goroutine while the decoder pulls
// buffers from another.
//
// Returning a buffer whose packet is still referenced anywhere corrupts
// that packet, so only the owner of the full chunk lifecycle (e.g.
// dataset.PcapSource.Recycle) should call the Put methods.
type BufferPool struct {
	data  sync.Pool // *[]byte, capacity varies
	pkts  sync.Pool // *[]*netpkt.Packet
	views sync.Pool // *[]netpkt.PacketView

	gets   atomic.Uint64
	reuses atomic.Uint64
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// getData returns a zeroed-length buffer with capacity >= n, reusing a
// pooled one when it is large enough.
func (p *BufferPool) getData(n int) []byte {
	p.gets.Add(1)
	if b, ok := p.data.Get().(*[]byte); ok && b != nil {
		if cap(*b) >= n {
			p.reuses.Add(1)
			return (*b)[:n]
		}
		// Too small for this record; a capture's larger packets would
		// otherwise starve the pool, so drop it and allocate fresh.
	}
	return make([]byte, n)
}

// PutData returns one packet data buffer to the pool.
func (p *BufferPool) PutData(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.data.Put(&b)
}

// getPkts returns an empty packet slice, reusing a pooled backing array.
func (p *BufferPool) getPkts() []*netpkt.Packet {
	if s, ok := p.pkts.Get().(*[]*netpkt.Packet); ok && s != nil {
		return (*s)[:0]
	}
	return nil
}

// PutPkts returns a chunk's packet slice to the pool. The pointers are
// cleared so pooled backing arrays do not pin dead packets.
func (p *BufferPool) PutPkts(s []*netpkt.Packet) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = nil
	}
	s = s[:0]
	p.pkts.Put(&s)
}

// getViews returns an empty view slice, reusing a pooled backing array.
func (p *BufferPool) getViews() []netpkt.PacketView {
	if s, ok := p.views.Get().(*[]netpkt.PacketView); ok && s != nil {
		return (*s)[:0]
	}
	return nil
}

// PutViews returns a chunk's view slice to the pool. Views are zeroed so
// pooled backing arrays do not pin raw buffers or app-layer messages.
func (p *BufferPool) PutViews(s []netpkt.PacketView) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	p.views.Put(&s)
}

// Stats reports how many data buffers were requested and how many of
// those requests were served from the pool.
func (p *BufferPool) Stats() (gets, reuses uint64) {
	return p.gets.Load(), p.reuses.Load()
}

// openMappings counts the live file mappings of the process: created by
// OpenMmap, gone once the last reference (owner Reader plus any retained
// chunk refs) is released. Exported through OpenMappings for leak gauges.
var openMappings atomic.Int64

// OpenMappings reports how many pcap file mappings are currently live —
// readers still open plus mappings kept alive by retained references.
// Operator surfaces use it as a leak gauge: after every source is closed
// and every in-flight chunk released, it must return to its prior value.
func OpenMappings() int64 { return openMappings.Load() }

// Mapping is a refcounted memory-mapped pcap file. The Reader that
// OpenMmap returns owns one reference (released by Reader.Close);
// consumers whose record slices must outlive the reader — a directory
// watch whose chunks survive each rotated file — Retain one reference
// per in-flight chunk and Release it when the chunk is done. The region
// is only unmapped when the count reaches zero, so record bytes stay
// valid until the last holder lets go, regardless of the order in which
// the reader closes and the chunks drain.
type Mapping struct {
	data []byte
	refs atomic.Int64
}

// newMapping wraps a freshly mapped region with one owner reference.
func newMapping(data []byte) *Mapping {
	m := &Mapping{data: data}
	m.refs.Store(1)
	openMappings.Add(1)
	return m
}

// Retain adds one reference; pair every Retain with exactly one Release.
func (m *Mapping) Retain() { m.refs.Add(1) }

// Release drops one reference and unmaps the region when it was the
// last. Every record slice and view cut from the mapping becomes invalid
// at that point. Safe to call from any goroutine.
func (m *Mapping) Release() error {
	n := m.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("pcap: Mapping released more often than retained")
	}
	data := m.data
	m.data = nil
	openMappings.Add(-1)
	return munmap(data)
}

// Magic numbers of the classic pcap format.
const (
	magicUsec = 0xa1b2c3d4
	magicNsec = 0xa1b23c4d
)

// DefaultSnapLen is the snapshot length written to file headers.
const DefaultSnapLen = 65535

// ErrBadMagic is returned when the stream does not start with a pcap
// global header.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Reader decodes packets from a pcap stream. It has two modes: buffered
// (NewReader, record bytes copied off an io.Reader) and zero-copy
// (OpenMmap, record bytes are subslices of the memory-mapped file — see
// OpenMmap for the lifetime rules).
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nanos   bool
	link    netpkt.LinkType
	snapLen uint32
	hdr     [16]byte
	pool    *BufferPool

	// mm/pos drive the zero-copy mode: the mapped file and the read
	// offset into it. mm is nil in buffered mode. mp is the refcounted
	// handle behind mm; the reader holds the owner reference.
	mm  []byte
	mp  *Mapping
	pos int
}

// SetBufferPool makes Next draw record data buffers (and ReadChunk its
// packet slices) from p instead of allocating fresh ones. The caller is
// then responsible for returning buffers of finished packets via the
// pool's Put methods; nil disables pooling (the default).
func (r *Reader) SetBufferPool(p *BufferPool) { r.pool = p }

// NewReader parses the global header and prepares to stream packets.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var gh [24]byte
	if _, err := io.ReadFull(br, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	rd := &Reader{r: br}
	if err := rd.parseGlobal(gh[:]); err != nil {
		return nil, err
	}
	return rd, nil
}

// parseGlobal decodes the 24-byte global header into the reader.
func (r *Reader) parseGlobal(gh []byte) error {
	magicLE := binary.LittleEndian.Uint32(gh[0:4])
	magicBE := binary.BigEndian.Uint32(gh[0:4])
	switch {
	case magicLE == magicUsec:
		r.order = binary.LittleEndian
	case magicLE == magicNsec:
		r.order, r.nanos = binary.LittleEndian, true
	case magicBE == magicUsec:
		r.order = binary.BigEndian
	case magicBE == magicNsec:
		r.order, r.nanos = binary.BigEndian, true
	default:
		return ErrBadMagic
	}
	r.snapLen = r.order.Uint32(gh[16:20])
	r.link = netpkt.LinkType(r.order.Uint32(gh[20:24]))
	return nil
}

// ZeroCopy reports whether the reader is in mmap mode, where record data
// slices alias the mapped region (and must not be pooled or retained past
// Close).
func (r *Reader) ZeroCopy() bool { return r.mm != nil }

// Mapping returns the refcounted mapping behind a zero-copy reader (nil
// in buffered mode, and after Close). Consumers that hand record slices
// downstream past the reader's lifetime Retain it per chunk and Release
// on the chunk's last use.
func (r *Reader) Mapping() *Mapping { return r.mp }

// Rewind repositions a zero-copy reader at the first record and reports
// whether it could (false in buffered mode, where the caller must seek
// the underlying stream and build a new Reader instead).
func (r *Reader) Rewind() bool {
	if r.mm == nil {
		return false
	}
	r.pos = 24
	return true
}

// Close releases the owner reference on the mapping of a zero-copy
// reader. With no other references outstanding the region is unmapped
// immediately and every record slice and view it handed out becomes
// invalid; references retained via Mapping keep the region alive until
// their own Release. It is a no-op (and nil error) in buffered mode, and
// idempotent in both.
func (r *Reader) Close() error {
	if r.mp == nil {
		return nil
	}
	mp := r.mp
	r.mm, r.mp = nil, nil
	return mp.Release()
}

// LinkType reports the capture's link type.
func (r *Reader) LinkType() netpkt.LinkType { return r.link }

// SnapLen reports the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next raw record. It returns io.EOF cleanly at end of
// stream. In buffered mode the data slice is freshly allocated unless a
// BufferPool is attached (then it may reuse a recycled buffer); in
// zero-copy mode it is a subslice of the mapped file, valid until Close.
func (r *Reader) Next() (ts time.Time, data []byte, origLen int, err error) {
	var hdr []byte
	if r.mm != nil {
		if r.pos+16 > len(r.mm) {
			// At (or partially into) end of map: a dangling partial record
			// header ends the stream cleanly, like buffered mode.
			return time.Time{}, nil, 0, io.EOF
		}
		hdr = r.mm[r.pos : r.pos+16]
	} else {
		if _, err = io.ReadFull(r.r, r.hdr[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				err = io.EOF
			}
			return time.Time{}, nil, 0, err
		}
		hdr = r.hdr[:]
	}
	sec := r.order.Uint32(hdr[0:4])
	sub := r.order.Uint32(hdr[4:8])
	incl := r.order.Uint32(hdr[8:12])
	orig := r.order.Uint32(hdr[12:16])
	// A record cannot legitimately exceed the capture's snapshot length
	// (or the format ceiling when the header says 0): such a length is a
	// corrupt or malicious record header, and trusting it would mis-frame
	// every later record.
	limit := r.snapLen
	if limit == 0 {
		limit = DefaultSnapLen
	}
	if incl > limit {
		return time.Time{}, nil, 0, fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, limit)
	}
	if r.mm != nil {
		start := r.pos + 16
		if start+int(incl) > len(r.mm) {
			return time.Time{}, nil, 0, fmt.Errorf("pcap: truncated record: %w", io.ErrUnexpectedEOF)
		}
		data = r.mm[start : start+int(incl) : start+int(incl)]
		r.pos = start + int(incl)
	} else {
		if r.pool != nil {
			data = r.pool.getData(int(incl))
		} else {
			data = make([]byte, int(incl))
		}
		if _, err = io.ReadFull(r.r, data); err != nil {
			return time.Time{}, nil, 0, fmt.Errorf("pcap: truncated record: %w", err)
		}
	}
	nsec := int64(sub)
	if !r.nanos {
		nsec *= 1000
	}
	return time.Unix(int64(sec), nsec).UTC(), data, int(orig), nil
}

// NextPacket reads and decodes the next packet.
func (r *Reader) NextPacket() (*netpkt.Packet, error) {
	ts, data, _, err := r.Next()
	if err != nil {
		return nil, err
	}
	return netpkt.Decode(data, r.link, ts), nil
}

// ReadAll decodes every remaining packet in the stream.
func (r *Reader) ReadAll() ([]*netpkt.Packet, error) {
	var out []*netpkt.Packet
	for {
		p, err := r.NextPacket()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// ReadChunk decodes up to maxRows packets (or up to maxBytes of wire
// bytes, whichever bound is hit first; each bound is ignored when <= 0)
// without holding the rest of the capture in memory. It always makes
// progress: at least one packet is returned unless the stream is at EOF,
// in which case it returns (nil, io.EOF).
func (r *Reader) ReadChunk(maxRows, maxBytes int) ([]*netpkt.Packet, error) {
	var out []*netpkt.Packet
	if r.pool != nil {
		out = r.pool.getPkts()
	}
	bytes := 0
	for maxRows <= 0 || len(out) < maxRows {
		p, err := r.NextPacket()
		if errors.Is(err, io.EOF) {
			if len(out) == 0 {
				if r.pool != nil {
					r.pool.PutPkts(out)
				}
				return nil, io.EOF
			}
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
		bytes += p.WireLen()
		if maxBytes > 0 && bytes >= maxBytes {
			break
		}
	}
	return out, nil
}

// ReadViews is the lazy counterpart of ReadChunk: it reads up to maxRows
// records (or maxBytes wire bytes; each bound ignored when <= 0) into
// PacketViews instead of eagerly decoded Packets, applying hint on each
// so the requested decode depth happens here, on the reading goroutine.
// In zero-copy mode the views alias the mapped file; in buffered mode
// they own pooled (or fresh) record buffers. Like ReadChunk it always
// makes progress and returns (nil, io.EOF) at end of stream. The view
// slice comes from the attached BufferPool when present — hand it back
// with PutViews (plus PutData per record in buffered mode) when done.
func (r *Reader) ReadViews(maxRows, maxBytes int, hint netpkt.DecodeHint) ([]netpkt.PacketView, error) {
	var out []netpkt.PacketView
	if r.pool != nil {
		out = r.pool.getViews()
	}
	bytes := 0
	for maxRows <= 0 || len(out) < maxRows {
		ts, data, _, err := r.Next()
		if errors.Is(err, io.EOF) {
			if len(out) == 0 {
				if r.pool != nil {
					r.pool.PutViews(out)
				}
				return nil, io.EOF
			}
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, netpkt.PacketView{})
		v := &out[len(out)-1]
		v.Reset(data, r.link, ts)
		v.Predecode(hint)
		bytes += len(data)
		if maxBytes > 0 && bytes >= maxBytes {
			break
		}
	}
	return out, nil
}

// Writer encodes packets to a pcap stream.
type Writer struct {
	w     *bufio.Writer
	nanos bool
}

// NewWriter writes a little-endian global header for the given link type.
func NewWriter(w io.Writer, link netpkt.LinkType) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], magicUsec)
	binary.LittleEndian.PutUint16(gh[4:6], 2)
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(gh[20:24], uint32(link))
	if _, err := bw.Write(gh[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteRaw appends one record with the given timestamp.
func (w *Writer) WriteRaw(ts time.Time, data []byte) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// WritePacket serializes the packet if needed and appends it.
func (w *Writer) WritePacket(p *netpkt.Packet) error {
	data := p.Data
	if len(data) == 0 {
		var err error
		if data, err = p.Serialize(); err != nil {
			return err
		}
	}
	return w.WriteRaw(p.Ts, data)
}

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }
