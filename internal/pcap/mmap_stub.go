//go:build !unix

package pcap

import (
	"errors"
	"os"
)

// mmapSupported reports whether OpenMmap can work on this platform.
const mmapSupported = false

// errNoMmap signals that the platform has no mmap support; callers fall
// back to the buffered NewReader path.
var errNoMmap = errors.New("pcap: mmap not supported on this platform")

// OpenMmap is unavailable on non-unix platforms; it always errors so
// callers fall back to NewReader.
func OpenMmap(f *os.File) (*Reader, error) { return nil, errNoMmap }

// munmap matches the unix build's helper; unreachable here because no
// Reader ever holds a mapping.
func munmap(b []byte) error { return nil }
