package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"lumen/internal/netpkt"
)

func samplePacket(ts time.Time, sport uint16) *netpkt.Packet {
	return &netpkt.Packet{
		Ts:  ts,
		Eth: &netpkt.Ethernet{Src: netpkt.MAC{2, 0, 0, 0, 0, 1}, EtherType: netpkt.EtherTypeIPv4},
		IPv4: &netpkt.IPv4{
			TTL: 64, Protocol: netpkt.ProtoTCP,
			Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		},
		TCP:     &netpkt.TCP{SrcPort: sport, DstPort: 80, Flags: netpkt.FlagSYN},
		Payload: []byte("hello"),
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, netpkt.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 123456000).UTC()
	for i := 0; i < 10; i++ {
		if err := w.WritePacket(samplePacket(base.Add(time.Duration(i)*time.Millisecond), uint16(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != netpkt.LinkEthernet {
		t.Fatalf("link = %v, want ethernet", r.LinkType())
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 10 {
		t.Fatalf("read %d packets, want 10", len(pkts))
	}
	for i, p := range pkts {
		if p.TCP == nil || p.TCP.SrcPort != uint16(1000+i) {
			t.Fatalf("packet %d tcp mismatch: %+v", i, p.TCP)
		}
		want := base.Add(time.Duration(i) * time.Millisecond)
		if !p.Ts.Equal(want) {
			t.Fatalf("packet %d ts = %v, want %v", i, p.Ts, want)
		}
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if err == nil {
		t.Fatal("want error on short header")
	}
}

func TestReaderBigEndianNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond capture with one 4-byte record.
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.BigEndian.PutUint32(gh[0:4], magicNsec)
	binary.BigEndian.PutUint16(gh[4:6], 2)
	binary.BigEndian.PutUint16(gh[6:8], 4)
	binary.BigEndian.PutUint32(gh[16:20], DefaultSnapLen)
	binary.BigEndian.PutUint32(gh[20:24], uint32(netpkt.LinkEthernet))
	buf.Write(gh)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1000)
	binary.BigEndian.PutUint32(rec[4:8], 999) // 999 ns
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec)
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, data, orig, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Equal(time.Unix(1000, 999).UTC()) {
		t.Errorf("ts = %v, want 1000s+999ns", ts)
	}
	if len(data) != 4 || orig != 4 {
		t.Errorf("lengths = %d/%d, want 4/4", len(data), orig)
	}
	if _, _, _, err = r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, netpkt.LinkEthernet)
	_ = w.WriteRaw(time.Unix(1, 0), []byte{1, 2, 3, 4, 5})
	_ = w.Flush()
	cut := buf.Bytes()[:buf.Len()-2] // chop the record body
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err = r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("want truncation error, got %v", err)
	}
}

func TestWriterDot11Link(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, netpkt.LinkDot11)
	if err != nil {
		t.Fatal(err)
	}
	p := &netpkt.Packet{
		Ts:    time.Unix(5, 0),
		Dot11: &netpkt.Dot11{Subtype: netpkt.Dot11Beacon, Addr2: netpkt.MAC{1, 1, 1, 1, 1, 1}},
	}
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != netpkt.LinkDot11 {
		t.Fatalf("link = %v, want dot11", r.LinkType())
	}
	got, err := r.NextPacket()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dot11 == nil || got.Dot11.Subtype != netpkt.Dot11Beacon {
		t.Fatalf("dot11 mismatch: %+v", got.Dot11)
	}
}

func sampleCapture(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, netpkt.LinkEthernet)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0).UTC()
	for i := 0; i < n; i++ {
		if err := w.WritePacket(samplePacket(base.Add(time.Duration(i)*time.Millisecond), uint16(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadChunkRowBound(t *testing.T) {
	r, err := NewReader(bytes.NewReader(sampleCapture(t, 10)))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for {
		pkts, err := r.ReadChunk(4, 0)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) > 4 || len(pkts) == 0 {
			t.Fatalf("chunk of %d packets violates bound", len(pkts))
		}
		for j, p := range pkts {
			if p.TCP.SrcPort != uint16(1000+total+j) {
				t.Fatalf("packet %d out of order", total+j)
			}
		}
		total += len(pkts)
	}
	if total != 10 {
		t.Fatalf("chunks cover %d packets, want 10", total)
	}
}

func TestReadChunkByteBoundMakesProgress(t *testing.T) {
	r, err := NewReader(bytes.NewReader(sampleCapture(t, 5)))
	if err != nil {
		t.Fatal(err)
	}
	// A 1-byte bound is below any packet size; each chunk must still
	// return exactly one packet rather than stalling or erroring.
	for i := 0; i < 5; i++ {
		pkts, err := r.ReadChunk(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) != 1 {
			t.Fatalf("chunk %d has %d packets, want 1", i, len(pkts))
		}
	}
	if _, err := r.ReadChunk(0, 1); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at end of capture, got %v", err)
	}
}

func TestReadChunkUnboundedEqualsReadAll(t *testing.T) {
	raw := sampleCapture(t, 7)
	r1, _ := NewReader(bytes.NewReader(raw))
	want, err := r1.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewReader(bytes.NewReader(raw))
	got, err := r2.ReadChunk(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("unbounded chunk read %d packets, ReadAll %d", len(got), len(want))
	}
}
