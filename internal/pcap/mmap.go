//go:build unix

package pcap

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// mmapSupported reports whether OpenMmap can work on this platform.
const mmapSupported = true

// OpenMmap maps f read-only and returns a zero-copy Reader over the
// mapping: record data slices (and PacketViews built on them) alias the
// mapped region directly, so the read path performs no per-record copy
// and no per-record allocation. The mapping holds its own reference to
// the file, so the caller may close f (or even unlink the file — the
// kernel pins the pages) afterwards; the caller MUST call Reader.Close
// once no record slice or view is referenced anymore — touching one
// after the mapping's last reference is released faults. Consumers whose
// chunks outlive the reader retain extra references via Reader.Mapping.
//
// Only regular files at least a global header long can be mapped;
// anything else (pipes, sockets, empty files) returns an error so
// callers can fall back to NewReader.
func OpenMmap(f *os.File) (*Reader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pcap: mmap stat: %w", err)
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("pcap: mmap: %s is not a regular file", f.Name())
	}
	size := fi.Size()
	if size < 24 {
		return nil, fmt.Errorf("pcap: mmap: %s too short for a global header: %w", f.Name(), io.ErrUnexpectedEOF)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("pcap: mmap: %s exceeds the addressable size", f.Name())
	}
	mm, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("pcap: mmap %s: %w", f.Name(), err)
	}
	rd := &Reader{mm: mm, mp: newMapping(mm), pos: 24}
	if err := rd.parseGlobal(mm[:24]); err != nil {
		rd.Close()
		return nil, err
	}
	return rd, nil
}

// munmap releases a mapping created by OpenMmap.
func munmap(b []byte) error { return syscall.Munmap(b) }
