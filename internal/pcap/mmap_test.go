package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lumen/internal/netpkt"
)

// writeCaptureFile materializes a sample capture as a regular file.
func writeCaptureFile(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "capture.pcap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// openMmap opens a capture file in zero-copy mode, skipping on platforms
// without mmap support.
func openMmap(t *testing.T, path string) (*Reader, *os.File) {
	t.Helper()
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenMmap(f)
	if err != nil {
		f.Close()
		t.Fatalf("OpenMmap: %v", err)
	}
	return r, f
}

// customCapture hand-builds a little-endian usec capture with the given
// header snaplen and one record claiming incl bytes (body holds body
// bytes, which may differ to simulate corruption).
func customCapture(snaplen, incl uint32, body []byte) []byte {
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.LittleEndian.PutUint32(gh[0:4], magicUsec)
	binary.LittleEndian.PutUint16(gh[4:6], 2)
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], snaplen)
	binary.LittleEndian.PutUint32(gh[20:24], uint32(netpkt.LinkEthernet))
	buf.Write(gh)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], 1)
	binary.LittleEndian.PutUint32(rec[8:12], incl)
	binary.LittleEndian.PutUint32(rec[12:16], incl)
	buf.Write(rec)
	buf.Write(body)
	return buf.Bytes()
}

// TestSnapLenValidation: a record header claiming more bytes than the
// capture's snapshot length is corrupt and must be rejected — including
// when the claim is still under the format ceiling (the case a prior
// version accepted, mis-framing every later record).
func TestSnapLenValidation(t *testing.T) {
	cases := []struct {
		name    string
		snaplen uint32
		incl    uint32
		wantErr bool
	}{
		{"within snaplen", 100, 80, false},
		{"over snaplen under ceiling", 100, 200, true},
		{"zero snaplen uses ceiling", 0, DefaultSnapLen + 1, true},
		{"zero snaplen within ceiling", 0, 1000, false},
		{"large snaplen not clamped", 262144, 100000, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			raw := customCapture(c.snaplen, c.incl, make([]byte, c.incl))
			r, err := NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			_, data, _, err := r.Next()
			if c.wantErr {
				if err == nil || errors.Is(err, io.EOF) {
					t.Fatalf("corrupt record accepted (err=%v)", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("valid record rejected: %v", err)
			}
			if len(data) != int(c.incl) {
				t.Fatalf("read %d bytes, want %d", len(data), c.incl)
			}
		})
	}
}

func TestOpenMmapRoundTrip(t *testing.T) {
	raw := sampleCapture(t, 10)
	path := writeCaptureFile(t, raw)
	r, f := openMmap(t, path)
	defer f.Close()
	defer r.Close()
	if !r.ZeroCopy() {
		t.Fatal("mmap reader should report ZeroCopy")
	}
	if r.LinkType() != netpkt.LinkEthernet {
		t.Fatalf("link = %v, want ethernet", r.LinkType())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	br, _ := NewReader(bytes.NewReader(raw))
	want, err := br.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("mmap read %d packets, buffered %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("packet %d differs between mmap and buffered decode", i)
		}
	}
	// Rewind re-reads the same stream in place.
	if !r.Rewind() {
		t.Fatal("mmap reader must support Rewind")
	}
	again, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(want) {
		t.Fatalf("rewound read %d packets, want %d", len(again), len(want))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenMmapRejectsNonRegular(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	f, err := os.Open(os.DevNull)
	if err != nil {
		t.Skip("no /dev/null")
	}
	defer f.Close()
	if _, err := OpenMmap(f); err == nil {
		t.Fatal("OpenMmap should reject non-regular files")
	}
}

func TestOpenMmapRejectsShortFile(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap not supported on this platform")
	}
	path := writeCaptureFile(t, []byte{1, 2, 3})
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := OpenMmap(f); err == nil {
		t.Fatal("OpenMmap should reject files shorter than a global header")
	}
}

func TestMmapTruncatedRecord(t *testing.T) {
	raw := sampleCapture(t, 3)
	// Chop the final record body: Next must surface a truncation error,
	// exactly like the buffered reader.
	path := writeCaptureFile(t, raw[:len(raw)-2])
	r, f := openMmap(t, path)
	defer f.Close()
	defer r.Close()
	var err error
	for i := 0; i < 3; i++ {
		if _, _, _, err = r.Next(); err != nil {
			break
		}
	}
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("want truncation error, got %v", err)
	}
}

func TestMmapPartialTrailerIsEOF(t *testing.T) {
	raw := sampleCapture(t, 2)
	// Leave 8 dangling bytes of a third record header: a partial trailer
	// ends the stream cleanly.
	trailer := make([]byte, 8)
	path := writeCaptureFile(t, append(raw, trailer...))
	r, f := openMmap(t, path)
	defer f.Close()
	defer r.Close()
	n := 0
	for {
		_, _, _, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d packets, want 2", n)
	}
}

// TestReadViewsMatchesReadChunk: materialized views must equal the
// eagerly decoded packets, in both reader modes, at every decode hint.
func TestReadViewsMatchesReadChunk(t *testing.T) {
	raw := sampleCapture(t, 9)
	er, _ := NewReader(bytes.NewReader(raw))
	want, err := er.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	hints := []netpkt.DecodeHint{
		{},
		{Headers: true},
		{Headers: true, Apps: netpkt.AppDNS | netpkt.AppHTTP | netpkt.AppMQTT},
	}
	for _, hint := range hints {
		check := func(t *testing.T, r *Reader) {
			var got []*netpkt.Packet
			for {
				views, err := r.ReadViews(4, 0, hint)
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				for i := range views {
					got = append(got, views[i].Materialize())
				}
			}
			if len(got) != len(want) {
				t.Fatalf("views cover %d packets, want %d", len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("hint %+v: packet %d differs:\nview:  %+v\neager: %+v", hint, i, got[i], want[i])
				}
			}
		}
		t.Run("buffered", func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			check(t, r)
		})
		t.Run("mmap", func(t *testing.T) {
			path := writeCaptureFile(t, raw)
			r, f := openMmap(t, path)
			defer f.Close()
			defer r.Close()
			check(t, r)
		})
	}
}

// TestMmapViewsAliasMapping: zero-copy views really are subslices of one
// mapping — no per-record allocation or copy.
func TestMmapViewsAliasMapping(t *testing.T) {
	raw := sampleCapture(t, 5)
	path := writeCaptureFile(t, raw)
	r, f := openMmap(t, path)
	defer f.Close()
	defer r.Close()
	views, err := r.ReadViews(0, 0, netpkt.DecodeHint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 5 {
		t.Fatalf("read %d views, want 5", len(views))
	}
	pos := 24
	for i := range views {
		d := views[i].Data
		if &d[0] != &r.mm[pos+16] {
			t.Fatalf("view %d data does not alias the mapping", i)
		}
		pos += 16 + len(d)
	}
}

// TestViewsRecordPoolRoundTrip: buffered ReadViews draws record buffers
// from the attached pool and PutViews/PutData recycle them.
func TestViewsRecordPoolRoundTrip(t *testing.T) {
	raw := sampleCapture(t, 8)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool()
	r.SetBufferPool(pool)
	for {
		views, err := r.ReadViews(2, 0, netpkt.DecodeHint{Headers: true})
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range views {
			pool.PutData(views[i].Data)
		}
		pool.PutViews(views)
	}
	gets, reuses := pool.Stats()
	if gets == 0 || reuses == 0 {
		t.Fatalf("pool unused: gets=%d reuses=%d", gets, reuses)
	}
}
