package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format ("X" =
// complete event, "M" = metadata). Timestamps and durations are in
// microseconds; fractional values are allowed and preserve sub-µs ops.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the trace_event format, the
// one Perfetto and chrome://tracing open directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every finished span in the Chrome trace_event
// JSON format. Open the file in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: spans sharing a track (tid) nest by their time
// ranges, and span attributes appear under "args".
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })

	events := make([]chromeEvent, 0, len(spans)+4)
	tids := map[int]bool{}
	for _, s := range spans {
		tids[s.TID] = true
		args := make(map[string]any, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			args[k] = v
		}
		args["span_id"] = s.ID
		if s.Parent != 0 {
			args["parent_id"] = s.Parent
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  s.TID,
			Args: args,
		})
	}
	// Name the tracks so Perfetto shows "main" / "worker N" lanes.
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	meta := make([]chromeEvent, 0, len(order))
	for _, tid := range order {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"})
}

// WriteJSONL exports every finished span as one JSON object per line
// (the SpanRecord schema), in span start order — the flat form for jq,
// spreadsheets and ad-hoc scripts.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes WriteChromeTrace output to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	return writeFile(path, t.WriteChromeTrace)
}

// WriteJSONLFile writes WriteJSONL output to path.
func (t *Tracer) WriteJSONLFile(path string) error {
	return writeFile(path, t.WriteJSONL)
}

// writeFile creates path and streams fn into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
