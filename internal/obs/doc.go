// Package obs is Lumen's observability layer: a hierarchical span tracer
// and a lightweight metrics registry, both standard-library only.
//
// It makes every benchmark run explainable — the paper's engine already
// "generates plots of memory and time spent in each operation" (§4); obs
// generalizes that into structured, tool-readable telemetry for the whole
// stack: suite → run → op → model-fit-epoch spans, and Prometheus-style
// counters, gauges and histograms for the shared cache, the worker pool
// and the training loops.
//
// # Tracing
//
// A Tracer collects Spans. Spans nest: Child opens a sub-span, End
// finishes one, Set attaches attributes (rows in/out, cache hit/miss,
// worker id...). Finished spans export in two formats:
//
//   - WriteChromeTrace: Chrome trace_event JSON, openable directly in
//     Perfetto (https://ui.perfetto.dev) or chrome://tracing;
//   - WriteJSONL: one flat JSON object per span, for jq/scripts.
//
// # Metrics
//
// A Metrics registry hands out Counter, Gauge and Histogram instruments,
// identified by name plus an optional fixed label set, and renders them
// in the Prometheus text exposition format (WritePrometheus / Handler).
//
// # Disabled state and overhead
//
// The zero values are the disabled state: a nil *Tracer returns nil
// *Spans, a nil *Metrics returns nil instruments, and every method on a
// nil receiver is a no-op. Call sites on hot paths guard with a single
// nil check, so a run with observability off performs no allocations and
// no atomic operations for it (verified by TestDisabledObsAllocs and the
// op-dispatch benchmark in internal/core).
//
// See OBSERVABILITY.md at the repository root for span and metric naming
// conventions and worked examples.
package obs
