package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, each
// preceded by # HELP and # TYPE lines, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.fams))
	for name := range m.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, m.fams[name])
	}
	m.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ls := range f.order {
			switch inst := f.series[ls].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, ls, inst.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, ls, formatFloat(inst.Value()))
			case *Histogram:
				writeHistogram(bw, f.name, ls, inst)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// the le label merged into any existing labels, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	bounds, cum, sum, total := h.snapshot()
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", formatFloat(b)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
}

// mergeLabel appends one more label pair to an already-rendered label
// string ("" or "{k=\"v\",...}").
func mergeLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheusFile writes the exposition to path.
func (m *Metrics) WritePrometheusFile(path string) error {
	if m == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Handler returns an http.Handler serving the exposition — mount it on
// /metrics to let Prometheus scrape a live run.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}
