package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("suite", 0)
	run := root.Child("run")
	op := run.Child("op:x")
	op.Set("rows_out", 42)
	op.Set("cached", true)
	op.End()
	run.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["run"].Parent != byName["suite"].ID {
		t.Errorf("run parent = %d, want suite id %d", byName["run"].Parent, byName["suite"].ID)
	}
	if byName["op:x"].Parent != byName["run"].ID {
		t.Errorf("op parent = %d, want run id %d", byName["op:x"].Parent, byName["run"].ID)
	}
	if byName["suite"].Parent != 0 {
		t.Errorf("suite parent = %d, want 0", byName["suite"].Parent)
	}
	if got := byName["op:x"].Attrs["rows_out"]; got != 42 {
		t.Errorf("rows_out attr = %v, want 42", got)
	}
	// Children are contained in their parents' time ranges.
	for _, pair := range [][2]string{{"suite", "run"}, {"run", "op:x"}} {
		p, c := byName[pair[0]], byName[pair[1]]
		if c.StartNS < p.StartNS || c.StartNS+c.DurNS > p.StartNS+p.DurNS {
			t.Errorf("span %s [%d,%d] not nested in %s [%d,%d]",
				pair[1], c.StartNS, c.StartNS+c.DurNS, pair[0], p.StartNS, p.StartNS+p.DurNS)
		}
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root", 0)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.ChildOn("work", w+1)
				sp.Set("worker", w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != workers*50+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*50+1)
	}
	ids := map[int64]bool{}
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
		if s.Name == "work" && s.Parent == 0 {
			t.Fatal("work span lost its parent")
		}
	}
}

func TestEmit(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("train", 0)
	start := time.Now()
	end := start.Add(5 * time.Millisecond)
	root.Emit("epoch:mlp", start, end, map[string]any{"epoch": 0, "loss": 0.5})
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	ep := spans[0]
	if ep.Name != "epoch:mlp" || ep.Parent == 0 || ep.DurNS != (5*time.Millisecond).Nanoseconds() {
		t.Errorf("unexpected emitted span %+v", ep)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x", 0)
	s.End()
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("got %d spans after double End, want 1", n)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("suite", 0)
	run := root.ChildOn("run", 2)
	run.Set("alg", "A07")
	run.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var x, m int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			x++
			if e.PID != 1 {
				t.Errorf("event %q pid = %d, want 1", e.Name, e.PID)
			}
		case "M":
			m++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if x != 2 {
		t.Errorf("got %d complete events, want 2", x)
	}
	if m != 2 { // tracks 0 and 2
		t.Errorf("got %d metadata events, want 2", m)
	}
	for _, e := range out.TraceEvents {
		if e.Name == "run" {
			if e.TID != 2 {
				t.Errorf("run tid = %d, want 2", e.TID)
			}
			if e.Args["alg"] != "A07" {
				t.Errorf("run args = %v", e.Args)
			}
			if _, ok := e.Args["parent_id"]; !ok {
				t.Error("run event lost parent_id")
			}
		}
	}
}

func TestJSONLExport(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a", 0)
	a.Child("b").End()
	a.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines+1, err)
		}
		if rec.Name == "" || rec.ID == 0 {
			t.Errorf("incomplete record %+v", rec)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d JSONL lines, want 2", lines)
	}
}

func TestDisabledTracerIsNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.Start("x", 0)
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must be no-ops, not panics.
	s.Set("k", "v")
	c := s.Child("y")
	c.ChildOn("z", 1).End()
	s.Emit("e", time.Now(), time.Now(), nil)
	s.End()
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer JSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestDisabledObsAllocs(t *testing.T) {
	var s *Span
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		sp := s.Child("op")
		sp.Set("rows", 1)
		sp.End()
		m.Counter("c_total", "help").Inc()
		m.Gauge("g", "help").Set(1)
		m.Histogram("h", "help", nil).Observe(0.1)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs allocated %.1f times per op, want 0", allocs)
	}
}

func TestSpanNamePropagatesToExport(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("op:flow_assemble", 0)
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"op:flow_assemble"`) {
		t.Fatal("span name missing from chrome export")
	}
}
