package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects finished spans. It is safe for concurrent use by many
// goroutines; a nil Tracer is the disabled state and yields nil Spans.
type Tracer struct {
	base   time.Time
	nextID atomic.Int64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns an enabled tracer whose time origin is "now": span
// timestamps are recorded relative to this instant.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Enabled reports whether the tracer records spans (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a root span on track tid. Track 0 is the main track;
// per-worker spans conventionally use tid = worker index + 1 so that
// Perfetto renders one lane per worker.
func (t *Tracer) Start(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: t.nextID.Add(1), tid: tid, name: name, start: time.Now()}
}

// Spans returns a snapshot of the spans finished so far, in End order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// record appends a finished span.
func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, r)
	t.mu.Unlock()
}

// SpanRecord is one finished span, as exported by WriteJSONL. Timestamps
// are nanoseconds relative to the tracer's creation.
type SpanRecord struct {
	// ID uniquely identifies the span within its tracer.
	ID int64 `json:"id"`
	// Parent is the enclosing span's ID (0 for root spans).
	Parent int64 `json:"parent,omitempty"`
	// TID is the track the span renders on (0 = main, n = worker n-1).
	TID int `json:"tid"`
	// Name is the span name, e.g. "op:flow_assemble".
	Name string `json:"name"`
	// StartNS is the span's start, in ns since the tracer was created.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration in ns.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries the attributes attached with Span.Set.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Span is one in-progress region of work. Spans form a tree: Child opens
// a nested span, End finishes this one and publishes it to the tracer.
//
// A Span's mutating methods (Set, End) must be called from the goroutine
// that owns it, but Child/ChildOn/Emit may be called concurrently from
// many goroutines — a parent shared by a worker pool is fine. All methods
// are no-ops on a nil receiver.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	tid    int
	name   string
	start  time.Time
	attrs  map[string]any
	ended  bool
}

// Child opens a sub-span on the same track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildOn(name, s.tid)
}

// ChildOn opens a sub-span on track tid (used to fan run spans out to
// per-worker tracks).
func (s *Span) ChildOn(name string, tid int) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, id: s.t.nextID.Add(1), parent: s.id, tid: tid, name: name, start: time.Now()}
}

// TID reports the track this span renders on, so callers can derive
// adjacent tracks for fan-out children (0 for a nil span).
func (s *Span) TID() int {
	if s == nil {
		return 0
	}
	return s.tid
}

// Set attaches an attribute, overwriting any earlier value for key.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// End finishes the span and publishes it to the tracer. Calling End more
// than once records only the first.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	now := time.Now()
	s.t.record(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		TID:     s.tid,
		Name:    s.name,
		StartNS: s.start.Sub(s.t.base).Nanoseconds(),
		DurNS:   now.Sub(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	})
}

// Emit records an already-completed child span with explicit start and
// end times — the retroactive form used for model-fit epochs, where the
// epoch boundary is only known after the fact. attrs may be nil.
func (s *Span) Emit(name string, start, end time.Time, attrs map[string]any) {
	if s == nil {
		return
	}
	s.t.record(SpanRecord{
		ID:      s.t.nextID.Add(1),
		Parent:  s.id,
		TID:     s.tid,
		Name:    name,
		StartNS: start.Sub(s.t.base).Nanoseconds(),
		DurNS:   end.Sub(start).Nanoseconds(),
		Attrs:   attrs,
	})
}
