package obs

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("lumen_cache_hits_total", "Shared cache hits.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := m.Counter("lumen_cache_hits_total", "Shared cache hits."); again != c {
		t.Fatal("re-resolving a counter returned a different instrument")
	}
	g := m.Gauge("lumen_workers", "Worker pool size.")
	g.Set(8)
	g.Add(-3)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v, want 5", g.Value())
	}
}

func TestLabeledSeriesAreDistinctAndOrderInsensitive(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("ops_total", "", "op", "select", "mode", "train")
	b := m.Counter("ops_total", "", "mode", "train", "op", "select") // same labels, different order
	c := m.Counter("ops_total", "", "op", "filter", "mode", "train")
	if a != b {
		t.Fatal("label order split a series")
	}
	if a == c {
		t.Fatal("different label values shared a series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("wall_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	bounds, cum, sum, total := h.snapshot()
	if len(bounds) != 3 || total != 4 {
		t.Fatalf("bounds=%v total=%d", bounds, total)
	}
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 || cum[3] != 4 {
		t.Fatalf("cumulative counts = %v", cum)
	}
	if math.Abs(sum-5.555) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	// Boundary value lands in its own bucket (le is inclusive).
	h2 := m.Histogram("wall2_seconds", "", []float64{1, 2})
	h2.Observe(1)
	_, cum2, _, _ := h2.snapshot()
	if cum2[0] != 1 {
		t.Fatalf("le=1 bucket missed an observation at exactly 1: %v", cum2)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	m.Gauge("x_total", "")
}

// parseExposition minimally parses Prometheus text format into sample
// name → value, failing the test on malformed lines — the round-trip
// check that the exposition is machine-readable.
func parseExposition(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			if len(strings.Fields(line)) < 3 {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil && val != "+Inf" {
			t.Fatalf("sample %q has unparseable value %q", name, val)
		}
		out[name] = f
	}
	return out
}

func TestPrometheusExpositionRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter("lumen_runs_total", "Completed runs.").Add(12)
	m.Gauge("lumen_worker_utilization", "Busy / (wall x workers).").Set(0.75)
	m.Counter("lumen_ops_total", "Ops executed.", "op", "select").Add(3)
	m.Counter("lumen_ops_total", "Ops executed.", "op", `we"ird\op`).Inc()
	h := m.Histogram("lumen_op_wall_seconds", "Per-op wall time.", []float64{0.5, 1}, "op", "select")
	h.Observe(0.2)
	h.Observe(2)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := parseExposition(t, strings.NewReader(text))

	checks := map[string]float64{
		`lumen_runs_total`:                                    12,
		`lumen_worker_utilization`:                            0.75,
		`lumen_ops_total{op="select"}`:                        3,
		`lumen_op_wall_seconds_bucket{op="select",le="0.5"}`:  1,
		`lumen_op_wall_seconds_bucket{op="select",le="1"}`:    1,
		`lumen_op_wall_seconds_bucket{op="select",le="+Inf"}`: 2,
		`lumen_op_wall_seconds_sum{op="select"}`:              2.2,
		`lumen_op_wall_seconds_count{op="select"}`:            2,
	}
	for name, want := range checks {
		got, ok := samples[name]
		if !ok {
			t.Errorf("sample %s missing from exposition:\n%s", name, text)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("sample %s = %v, want %v", name, got, want)
		}
	}
	if !strings.Contains(text, `op="we\"ird\\op"`) {
		t.Errorf("label escaping missing:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE lumen_op_wall_seconds histogram") {
		t.Error("histogram TYPE line missing")
	}
	// Families must be sorted for deterministic output.
	first := strings.Index(text, "lumen_op_wall_seconds")
	last := strings.Index(text, "lumen_worker_utilization")
	if first < 0 || last < 0 || first > last {
		t.Error("families are not sorted by name")
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.Counter("hits_total", "").Inc()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	samples := parseExposition(t, resp.Body)
	if samples["hits_total"] != 1 {
		t.Fatalf("handler served %v", samples)
	}
}

func TestNilMetricsIsNilSafe(t *testing.T) {
	var m *Metrics
	if m.Enabled() {
		t.Fatal("nil metrics reports enabled")
	}
	m.Counter("c_total", "").Inc()
	m.Gauge("g", "").Set(1)
	m.Histogram("h", "", nil).Observe(1)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil metrics exposition: err=%v len=%d", err, buf.Len())
	}
}

func TestConcurrentMetrics(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Counter("c_total", "", "w", strconv.Itoa(w%2)).Inc()
				m.Histogram("h_seconds", "", nil).Observe(float64(i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	a := m.Counter("c_total", "", "w", "0").Value()
	b := m.Counter("c_total", "", "w", "1").Value()
	if a+b != 1600 {
		t.Fatalf("counters lost updates: %d + %d != 1600", a, b)
	}
	if m.Histogram("h_seconds", "", nil).Count() != 1600 {
		t.Fatal("histogram lost observations")
	}
}
