package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named instruments. Instruments are identified
// by a family name plus an optional fixed label set ("k1", "v1", "k2",
// "v2", ...); asking for the same (name, labels) again returns the same
// instrument, so call sites may re-resolve instead of caching.
//
// A nil Metrics is the disabled state: it hands out nil instruments
// whose methods are all no-ops.
type Metrics struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: its metadata plus every label combination.
type family struct {
	name, help, kind string
	buckets          []float64      // histograms only
	series           map[string]any // rendered label string → instrument
	order            []string       // insertion order of label strings
}

// NewMetrics returns an empty, enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{fams: map[string]*family{}}
}

// Enabled reports whether the registry records metrics (false for nil).
func (m *Metrics) Enabled() bool { return m != nil }

// Counter returns the monotonically-increasing counter for (name,
// labels), creating it on first use. By Prometheus convention the name
// should end in "_total". Registering a name that already exists as a
// different instrument kind panics.
func (m *Metrics) Counter(name, help string, labels ...string) *Counter {
	if m == nil {
		return nil
	}
	v := m.instrument(name, help, "counter", nil, labels)
	return v.(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (m *Metrics) Gauge(name, help string, labels ...string) *Gauge {
	if m == nil {
		return nil
	}
	v := m.instrument(name, help, "gauge", nil, labels)
	return v.(*Gauge)
}

// Histogram returns the fixed-bucket histogram for (name, labels),
// creating it on first use with the given upper bounds (ascending; an
// implicit +Inf bucket is always appended). buckets is only consulted at
// creation; nil means DefDurationBuckets.
func (m *Metrics) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if m == nil {
		return nil
	}
	v := m.instrument(name, help, "histogram", buckets, labels)
	return v.(*Histogram)
}

// instrument resolves or creates a series under its family.
func (m *Metrics) instrument(name, help, kind string, buckets []float64, labels []string) any {
	ls := renderLabels(labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	fam := m.fams[name]
	if fam == nil {
		if kind == "histogram" && buckets == nil {
			buckets = DefDurationBuckets
		}
		fam = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]any{}}
		m.fams[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.kind, kind))
	}
	if inst, ok := fam.series[ls]; ok {
		return inst
	}
	var inst any
	switch kind {
	case "counter":
		inst = &Counter{}
	case "gauge":
		inst = &Gauge{}
	case "histogram":
		inst = newHistogram(fam.buckets)
	}
	fam.series[ls] = inst
	fam.order = append(fam.order, ls)
	return inst
}

// renderLabels canonicalizes a flat key/value list into the Prometheus
// label syntax, sorting by key so label order at the call site does not
// split series. An odd trailing key is ignored. Values are escaped per
// the exposition format (backslash, quote, newline).
func renderLabels(labels []string) string {
	n := len(labels) / 2
	if n == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, n)
	for i := 0; i < n; i++ {
		pairs[i] = kv{labels[2*i], labels[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// DefDurationBuckets is the default histogram bucketing, in seconds,
// spanning sub-millisecond ops up to multi-second suite batches.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer. Nil-safe.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. Nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks their sum,
// Prometheus-style (cumulative buckets with a trailing +Inf). Nil-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []uint64  // len(bounds)+1; last = +Inf bucket
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot returns bounds plus cumulative counts, sum and total.
func (h *Histogram) snapshot() (bounds []float64, cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return h.bounds, cum, h.sum, h.total
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}
