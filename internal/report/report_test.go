package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"a", "longer"}}
	tb.Add("xxxx", "y")
	tb.Add("z", "w")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("rule length %d != header length %d", len(lines[1]), len(lines[0]))
	}
	if !strings.HasPrefix(lines[2], "xxxx") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := &Table{Header: []string{"k", "v"}}
	tb.Add("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
}

func TestHeatmapSetGetAndNaN(t *testing.T) {
	h := NewHeatmap("t", []string{"r1", "r2"}, []string{"c1", "c2"})
	if !math.IsNaN(h.Get("r1", "c1")) {
		t.Error("fresh cell should be NaN")
	}
	h.Set("r1", "c2", 0.5)
	if got := h.Get("r1", "c2"); got != 0.5 {
		t.Errorf("Get = %v, want 0.5", got)
	}
	h.Set("nope", "c1", 1) // ignored
	if !math.IsNaN(h.Get("r2", "c1")) {
		t.Error("unknown row Set must not write anywhere")
	}
	if math.IsNaN(h.Get("zz", "c1")) != true {
		t.Error("unknown name Get should be NaN")
	}
}

func TestHeatmapRenderGrayCells(t *testing.T) {
	h := NewHeatmap("title", []string{"alg"}, []string{"atk"})
	out := h.String()
	if !strings.Contains(out, "--") {
		t.Errorf("NaN cell should render as --:\n%s", out)
	}
	h.Set("alg", "atk", 0.93)
	out = h.String()
	if !strings.Contains(out, "93%") {
		t.Errorf("value cell should render a percentage:\n%s", out)
	}
}

func TestHeatmapCSV(t *testing.T) {
	h := NewHeatmap("", []string{"r"}, []string{"c1", "c2"})
	h.Set("r", "c1", 0.25)
	csv := h.CSV()
	if !strings.Contains(csv, "0.2500") {
		t.Errorf("csv missing value: %s", csv)
	}
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[1] != "r,0.2500," {
		t.Errorf("NaN should be empty cell: %q", lines[1])
	}
}

func TestDistSummary(t *testing.T) {
	d := Dist{Name: "x", Values: []float64{0, 0.25, 0.5, 0.75, 1}}
	mn, q1, med, q3, mx := d.Summary()
	if mn != 0 || q1 != 0.25 || med != 0.5 || q3 != 0.75 || mx != 1 {
		t.Errorf("summary = %v %v %v %v %v", mn, q1, med, q3, mx)
	}
	var empty Dist
	if a, b, c, dd, e := empty.Summary(); a+b+c+dd+e != 0 {
		t.Error("empty summary should be zeros")
	}
}

func TestDistTable(t *testing.T) {
	out := DistTable("alg", []Dist{{Name: "A", Values: []float64{0.5, 0.7}}})
	if !strings.Contains(out, "A") || !strings.Contains(out, "50.0%") {
		t.Errorf("dist table missing content:\n%s", out)
	}
}

func TestShadeBands(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.95, "█"}, {0.8, "▓"}, {0.5, "▒"}, {0.3, "░"}, {0.05, " "},
	}
	for _, c := range cases {
		if got := shade(c.v); got != c.want {
			t.Errorf("shade(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline(nil) = %q, want empty", got)
	}
	got := Sparkline([]float64{0, 0.5, 1})
	if want := "▁▄█"; got != want {
		t.Errorf("Sparkline ramp = %q, want %q", got, want)
	}
	// A constant series must not divide by zero.
	if got := Sparkline([]float64{2, 2, 2}); len([]rune(got)) != 3 {
		t.Errorf("constant sparkline = %q, want 3 runes", got)
	}
	// Descending loss curve: first rune highest, last lowest.
	r := []rune(Sparkline([]float64{9, 5, 3, 2, 1}))
	if r[0] != '█' || r[len(r)-1] != '▁' {
		t.Errorf("descending sparkline = %q", string(r))
	}
}
