// Package report renders benchmark results as aligned text tables,
// ASCII heatmaps and CSV — the "compact manner (using a heatmap)"
// presentation layer of the paper's evaluation framework.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Heatmap is a matrix of scores in [0,1]; NaN cells render as gray
// ("cases for which we did not have a dataset ... on which we could
// faithfully run the algorithm").
type Heatmap struct {
	Title    string
	RowNames []string
	ColNames []string
	Cells    [][]float64 // [row][col], NaN = not applicable
}

// NewHeatmap allocates a heatmap with all cells NaN.
func NewHeatmap(title string, rows, cols []string) *Heatmap {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
		for j := range cells[i] {
			cells[i][j] = math.NaN()
		}
	}
	return &Heatmap{Title: title, RowNames: rows, ColNames: cols, Cells: cells}
}

// Set stores a value by row/col name; unknown names are ignored.
func (h *Heatmap) Set(row, col string, v float64) {
	ri := indexOf(h.RowNames, row)
	ci := indexOf(h.ColNames, col)
	if ri >= 0 && ci >= 0 {
		h.Cells[ri][ci] = v
	}
}

// Get reads a value by row/col name (NaN when absent).
func (h *Heatmap) Get(row, col string) float64 {
	ri := indexOf(h.RowNames, row)
	ci := indexOf(h.ColNames, col)
	if ri < 0 || ci < 0 {
		return math.NaN()
	}
	return h.Cells[ri][ci]
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// String renders the heatmap: numeric cells as 2-digit percentages plus a
// shade glyph, gray cells as " -- ".
func (h *Heatmap) String() string {
	var b strings.Builder
	if h.Title != "" {
		b.WriteString(h.Title + "\n")
	}
	rw := 0
	for _, r := range h.RowNames {
		if len(r) > rw {
			rw = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", rw, "")
	for _, c := range h.ColNames {
		fmt.Fprintf(&b, " %6s", trunc(c, 6))
	}
	b.WriteByte('\n')
	for i, r := range h.RowNames {
		fmt.Fprintf(&b, "%-*s", rw, r)
		for j := range h.ColNames {
			v := h.Cells[i][j]
			if math.IsNaN(v) {
				b.WriteString("     --")
			} else {
				fmt.Fprintf(&b, "  %3.0f%%%s", v*100, shade(v))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shade(v float64) string {
	switch {
	case v >= 0.9:
		return "█"
	case v >= 0.7:
		return "▓"
	case v >= 0.4:
		return "▒"
	case v >= 0.2:
		return "░"
	default:
		return " "
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// CSV renders the heatmap as CSV with an empty cell for NaN.
func (h *Heatmap) CSV() string {
	t := &Table{Header: append([]string{""}, h.ColNames...)}
	for i, r := range h.RowNames {
		row := []string{r}
		for j := range h.ColNames {
			v := h.Cells[i][j]
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
		}
		t.Add(row...)
	}
	return t.CSV()
}

// Dist summarizes a distribution of values (one per train/test scenario)
// for box-plot style figures (Figs. 1b, 1c, 7, 8, 9).
type Dist struct {
	Name   string
	Values []float64
}

// Summary returns min, 25th, median, 75th and max.
func (d Dist) Summary() (min, q1, med, q3, max float64) {
	if len(d.Values) == 0 {
		return 0, 0, 0, 0, 0
	}
	cp := append([]float64(nil), d.Values...)
	sort.Float64s(cp)
	q := func(p float64) float64 {
		pos := p * float64(len(cp)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(cp) {
			return cp[lo]
		}
		return cp[lo]*(1-frac) + cp[lo+1]*frac
	}
	return cp[0], q(0.25), q(0.5), q(0.75), cp[len(cp)-1]
}

// DistTable renders a list of distributions as a five-number summary
// table.
func DistTable(title string, dists []Dist) string {
	t := &Table{Header: []string{title, "n", "min", "q1", "median", "q3", "max"}}
	for _, d := range dists {
		mn, q1, med, q3, mx := d.Summary()
		t.Add(d.Name, fmt.Sprintf("%d", len(d.Values)),
			pct(mn), pct(q1), pct(med), pct(q3), pct(mx))
	}
	return t.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// HumanBytes renders a byte count with a binary-prefix unit, for profile
// and cache-size output ("1.5MiB" rather than 1572864).
func HumanBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Sparkline renders vals as a one-line unicode block graph ("▁▃▇…"),
// scaled to the min/max of the series — the compact loss-curve view the
// CLI prints per trained model. Empty input yields an empty string; a
// constant series renders mid-height blocks.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		if hi == lo {
			out[i] = blocks[len(blocks)/2]
			continue
		}
		idx := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		out[i] = blocks[idx]
	}
	return string(out)
}
