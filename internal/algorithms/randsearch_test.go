package algorithms

import (
	"strings"
	"testing"

	"lumen/internal/core"
)

func TestSynthesizeRandomReturnsValidPipeline(t *testing.T) {
	calls := 0
	// Deterministic fake eval: prefer decision trees, then more feature
	// modules (count the tag letters in the name).
	eval := func(p *core.Pipeline) float64 {
		calls++
		score := 0.0
		if strings.Contains(p.Name, "decision_tree") {
			score += 0.5
		}
		tag := strings.SplitN(strings.TrimPrefix(p.Name, "rsynth-"), "-", 2)[0]
		score += float64(len(tag)) * 0.1
		return score
	}
	best, score, err := SynthesizeRandom(eval, RandomSynthOptions{Budget: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if calls < 13 { // 2/3 of budget at minimum
		t.Errorf("eval called %d times, want >= 13", calls)
	}
	if score <= 0 {
		t.Errorf("score = %v", score)
	}
	if err := core.NewEngine(best).Check(); err != nil {
		t.Errorf("winner does not type-check: %v", err)
	}
	// With this eval the winner should at least be a decision tree.
	if !strings.Contains(best.Name, "decision_tree") {
		t.Errorf("winner %q, want a decision_tree candidate", best.Name)
	}
}

func TestSynthesizeRandomDeterministic(t *testing.T) {
	eval := func(p *core.Pipeline) float64 { return float64(len(p.Name)) }
	a, _, err := SynthesizeRandom(eval, RandomSynthOptions{Budget: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SynthesizeRandom(eval, RandomSynthOptions{Budget: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Errorf("same seed produced different winners: %q vs %q", a.Name, b.Name)
	}
}
