package algorithms

import (
	"testing"

	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/mlkit"
)

func TestSixteenAlgorithmsRegistered(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("got %d algorithms, want 16 (Table 2)", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.ID] {
			t.Errorf("duplicate ID %s", a.ID)
		}
		seen[a.ID] = true
		if a.Ref == "" || a.Desc == "" {
			t.Errorf("%s: missing Ref/Desc", a.ID)
		}
	}
	for _, id := range []string{"A00", "A06", "A10", "A15"} {
		if !seen[id] {
			t.Errorf("missing %s", id)
		}
	}
}

func TestEveryPipelineTypeChecks(t *testing.T) {
	for _, a := range append(All(), Modified()...) {
		if err := core.NewEngine(a.Pipeline).Check(); err != nil {
			t.Errorf("%s: %v", a.ID, err)
		}
	}
}

func TestGranularityMix(t *testing.T) {
	counts := map[dataset.Granularity]int{}
	for _, a := range All() {
		counts[a.Granularity()]++
	}
	// Table 2: packet-level A00-A06, uniflow A10/A11, the rest connection.
	if counts[dataset.Packet] != 7 {
		t.Errorf("packet-level algorithms = %d, want 7 (A00-A06)", counts[dataset.Packet])
	}
	if counts[dataset.UniflowG] != 2 {
		t.Errorf("uniflow algorithms = %d, want 2 (A10, A11)", counts[dataset.UniflowG])
	}
	if counts[dataset.ConnectionG] != 7 {
		t.Errorf("connection algorithms = %d, want 7", counts[dataset.ConnectionG])
	}
}

func TestModifiedAlgorithms(t *testing.T) {
	mod := Modified()
	if len(mod) != 3 {
		t.Fatalf("got %d modified algorithms, want 3 (AM01-AM03)", len(mod))
	}
	for _, a := range mod {
		if a.Granularity() != dataset.ConnectionG {
			t.Errorf("%s: granularity %v, want connection (Fig. 6 evaluates connection level only)", a.ID, a.Granularity())
		}
	}
}

func TestGetResolvesBaseAndModified(t *testing.T) {
	if _, ok := Get("A06"); !ok {
		t.Error("A06 not found")
	}
	if _, ok := Get("AM02"); !ok {
		t.Error("AM02 not found")
	}
	if _, ok := Get("A99"); ok {
		t.Error("A99 should not resolve")
	}
}

// trainTest runs one algorithm on a dataset with a 70/30 packet-prefix
// split (train on the first 70% of time, test on the rest would starve
// attacks that occur early, so interleave instead).
func trainTest(t *testing.T, alg Algorithm, ds *dataset.Labeled) (prec, rec float64) {
	t.Helper()
	// Interleaved split: even packets train, odd test (keeps both sides
	// time-ordered and attack-covering).
	tr := &dataset.Labeled{Name: ds.Name + "-tr", Granularity: ds.Granularity, Link: ds.Link}
	te := &dataset.Labeled{Name: ds.Name + "-te", Granularity: ds.Granularity, Link: ds.Link}
	for i := range ds.Packets {
		dst := tr
		if i%2 == 1 {
			dst = te
		}
		dst.Packets = append(dst.Packets, ds.Packets[i])
		dst.Labels = append(dst.Labels, ds.Labels[i])
		dst.Attacks = append(dst.Attacks, ds.Attacks[i])
	}
	eng := core.NewEngine(alg.Pipeline)
	eng.Seed = 11
	if err := eng.Train(tr); err != nil {
		t.Fatalf("%s train: %v", alg.ID, err)
	}
	res, err := eng.Test(te)
	if err != nil {
		t.Fatalf("%s test: %v", alg.ID, err)
	}
	return mlkit.Precision(res.Truth, res.Pred), mlkit.Recall(res.Truth, res.Pred)
}

func TestSupervisedAlgorithmsDetectLoudAttacks(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models")
	}
	f1, _ := dataset.Get("F1")
	ds := f1.Generate(0.2)
	for _, id := range []string{"A13", "A14", "A15"} {
		alg, _ := Get(id)
		prec, rec := trainTest(t, alg, ds)
		if prec < 0.6 || rec < 0.4 {
			t.Errorf("%s on F1: precision %.3f recall %.3f — should catch DoS", id, prec, rec)
		}
	}
}

func TestSmartdetStrongOnDoS(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a forest")
	}
	f1, _ := dataset.Get("F1")
	ds := f1.Generate(0.2)
	alg, _ := Get("A10")
	prec, rec := trainTest(t, alg, ds)
	if prec < 0.8 || rec < 0.6 {
		t.Errorf("A10 (smartdet) on DoS: precision %.3f recall %.3f — paper reports 99%%", prec, rec)
	}
}

func TestKitsuneRunsOnPacketData(t *testing.T) {
	if testing.Short() {
		t.Skip("trains autoencoders")
	}
	p1, _ := dataset.Get("P1")
	ds := p1.Generate(0.5)
	tr := &dataset.Labeled{Name: "tr", Granularity: ds.Granularity, Link: ds.Link}
	te := &dataset.Labeled{Name: "te", Granularity: ds.Granularity, Link: ds.Link}
	for i := range ds.Packets {
		dst := tr
		if i%2 == 1 {
			dst = te
		}
		dst.Packets = append(dst.Packets, ds.Packets[i])
		dst.Labels = append(dst.Labels, ds.Labels[i])
		dst.Attacks = append(dst.Attacks, ds.Attacks[i])
	}
	alg, _ := Get("A06")
	eng := core.NewEngine(alg.Pipeline)
	eng.Seed = 11
	if err := eng.Train(tr); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Test(te)
	if err != nil {
		t.Fatal(err)
	}
	// Unsupervised detector: assert ranking quality, which is how the
	// OCSVM/Kitsune papers themselves report (AUC), rather than a fixed
	// threshold's precision.
	if res.Scores == nil {
		t.Fatal("kitsune produced no anomaly scores")
	}
	if auc := mlkit.AUC(res.Truth, res.Scores); auc < 0.6 {
		t.Errorf("A06 on P1: AUC %.3f — no anomaly signal", auc)
	}
}

func TestSynthesizeImprovesOverSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many candidate trainings")
	}
	f1, _ := dataset.Get("F1")
	ds := f1.Generate(0.15)
	calls := 0
	eval := func(p *core.Pipeline) float64 {
		calls++
		alg := Algorithm{ID: p.Name, Ref: "cand", Desc: "cand", Pipeline: p}
		prec, _ := trainTest(t, alg, ds)
		return prec
	}
	best, score, err := Synthesize(eval, SynthOptions{MaxRounds: 1, Models: []string{"decision_tree", "gaussian_nb"}})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || score < 0 {
		t.Fatalf("no result: %v score %v", best, score)
	}
	if calls < 5 {
		t.Errorf("search evaluated only %d candidates", calls)
	}
	if err := core.NewEngine(best).Check(); err != nil {
		t.Errorf("synthesized pipeline does not type-check: %v", err)
	}
}
