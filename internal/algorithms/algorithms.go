// Package algorithms ports the 16 ML-based IoT anomaly-detection
// algorithms of the paper's Table 2 onto the Lumen framework, each as a
// pipeline of core operations, plus the Lumen-guided modified algorithms
// (AM01–AM03) of Fig. 6. The feature pipelines follow the published
// designs; where hyperparameters were unspecified the defaults are used,
// as the paper does ("for those algorithms in which the hyperparameters
// were not specified, we use default parameters").
package algorithms

import (
	"lumen/internal/core"
	"lumen/internal/dataset"
)

// Algorithm is one registered algorithm.
type Algorithm struct {
	ID       string
	Ref      string // short citation tag from Table 2
	Desc     string
	Pipeline *core.Pipeline
	// NoIPNeeded marks algorithms whose features survive without IP
	// headers; only Kitsune qualifies, which is why it alone can run on
	// the 802.11 AWID3 dataset (paper Obs. 4).
	NoIPNeeded bool
}

// Granularity returns the algorithm's classification granularity.
func (a Algorithm) Granularity() dataset.Granularity {
	g, err := a.Pipeline.Granular()
	if err != nil {
		panic("algorithms: " + a.ID + ": " + err.Error()) // registry bug
	}
	return g
}

// All returns A00–A15 in order.
func All() []Algorithm { return baseline() }

// Modified returns the Lumen-synthesized AM01–AM03.
func Modified() []Algorithm { return modified() }

// Get looks up any algorithm (base or modified) by ID.
func Get(id string) (Algorithm, bool) {
	for _, a := range baseline() {
		if a.ID == id {
			return a, true
		}
	}
	for _, a := range modified() {
		if a.ID == id {
			return a, true
		}
	}
	return Algorithm{}, false
}

// ops shorthand.
func op(fn string, in []string, out string, p map[string]any) core.OpSpec {
	return core.OpSpec{Func: fn, Input: in, Output: out, Params: p}
}

// packetAggPipeline builds the ML-DDoS style pipeline: per-packet fields
// plus per-source windowed aggregates broadcast back to packets.
func packetAggPipeline(name, modelType string, modelParams map[string]any) *core.Pipeline {
	if modelParams == nil {
		modelParams = map[string]any{}
	}
	modelParams["model_type"] = modelType
	return &core.Pipeline{
		Name:        name,
		Granularity: "packet",
		Ops: []core.OpSpec{
			op("field_extract", []string{core.InputName}, "pkts", map[string]any{
				"fields": []string{"ts", "iat", "len", "payload_len", "proto", "src_port", "dst_port", "tcp_flags", "src_ip", "dst_ip"},
			}),
			op("group_by", []string{"pkts"}, "by_src", map[string]any{"flowid": []string{"src_ip"}}),
			op("time_slice", []string{"by_src"}, "sliced", map[string]any{"window": 10}),
			op("broadcast_aggregates", []string{"sliced"}, "ctx", map[string]any{
				"list": []any{
					map[string]any{"col": "len", "fn": "mean"},
					map[string]any{"col": "len", "fn": "bandwidth"},
					map[string]any{"col": "iat", "fn": "mean"},
					map[string]any{"col": "iat", "fn": "std"},
					map[string]any{"col": "dst_ip", "fn": "distinct"},
					map[string]any{"col": "dst_port", "fn": "entropy"},
					map[string]any{"col": "len", "fn": "count"},
				},
			}),
			op("select", []string{"ctx"}, "X", map[string]any{
				"cols": []string{
					"len", "payload_len", "proto", "dst_port", "tcp_flags",
					"grp_len_mean", "grp_len_bandwidth", "grp_iat_mean", "grp_iat_std",
					"grp_dst_ip_distinct", "grp_dst_port_entropy", "grp_len_count",
				},
			}),
			op("model", nil, "clf", modelParams),
			op("train", []string{"clf", "X"}, "fit", nil),
		},
	}
}

// nprintPipeline is the nPrint representation fed to AutoML (A01–A04).
func nprintPipeline(name, variant string) *core.Pipeline {
	return &core.Pipeline{
		Name:        name,
		Granularity: "packet",
		Ops: []core.OpSpec{
			op("nprint", []string{core.InputName}, "bits", map[string]any{"variant": variant}),
			op("model", nil, "clf", map[string]any{"model_type": "automl"}),
			op("train", []string{"clf", "bits"}, "fit", nil),
		},
	}
}

// connFeaturePipeline builds a connection-granularity pipeline with the
// given per-flow feature subset and model.
func connFeaturePipeline(name string, feats []string, normalize string, modelType string, modelParams map[string]any) *core.Pipeline {
	if modelParams == nil {
		modelParams = map[string]any{}
	}
	modelParams["model_type"] = modelType
	ops := []core.OpSpec{
		op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "connection"}),
		op("flow_features", []string{"flows"}, "feats", map[string]any{"features": feats}),
	}
	xName := "feats"
	if normalize != "" {
		ops = append(ops, op("normalize", []string{"feats"}, "norm", map[string]any{"kind": normalize}))
		xName = "norm"
	}
	ops = append(ops,
		op("model", nil, "clf", modelParams),
		op("train", []string{"clf", xName}, "fit", nil),
	)
	return &core.Pipeline{Name: name, Granularity: "connection", Ops: ops}
}

// zeekFeatures is the Zeek conn.log-derived feature set (A14).
var zeekFeatures = []string{
	"duration", "orig_bytes", "resp_bytes", "orig_pkts", "resp_pkts",
	"byte_ratio", "proto", "dst_port",
	"state_s0", "state_sf", "state_rej", "state_rst", "state_oth",
	"svc_http", "svc_tls", "svc_dns", "svc_telnet", "svc_ssh", "svc_mqtt", "svc_ntp", "svc_other",
}

// firstNFeatures is the OCSVM-family feature set: lengths and
// inter-arrival times of the first hundred packets (A07–A09).
var firstNFeatures = []string{
	"first_n_mean_len", "first_n_std_len", "first_n_mean_iat", "first_n_std_iat",
	"pkt_count", "duration",
}

// bayesianFeatures approximates the 248 per-flow discriminators of
// Moore & Zuev with the full flow-feature catalogue (A13).
var bayesianFeatures = core.FlowFeatures()

// iiotFeatures is the SCADA-oriented set: packet time, length, bandwidth,
// jitter (A15).
var iiotFeatures = []string{
	"duration", "pkt_count", "byte_count", "mean_len", "std_len", "min_len", "max_len",
	"mean_iat", "std_iat", "pps", "bps", "proto", "dst_port",
}

// smartdetFeatures keys on DoS signals: rate of change of TCP flags,
// spread of lengths, rates (A10; the features the paper credits for its
// DoS strength in Obs. 4).
var smartdetFeatures = []string{
	"flag_change_rate", "syn_count", "ack_count", "rst_count",
	"std_len", "mean_len", "pps", "bps", "pkt_count", "duration",
	"src_port", "dst_port",
}

func baseline() []Algorithm {
	return []Algorithm{
		{
			ID: "A00", Ref: "ML for DDoS [18]", Desc: "per-packet + per-source aggregates, ensemble of RF/SVM/DT/KNN",
			Pipeline: packetAggPipeline("A00-ml-ddos", "ensemble_rf_svm_dt_knn", nil),
		},
		{
			ID: "A01", Ref: "nprint1 [20]", Desc: "nPrint all sections + AutoML",
			Pipeline: nprintPipeline("A01-nprint-all", "all"),
		},
		{
			ID: "A02", Ref: "nprint2 [20]", Desc: "nPrint tcp+udp+ipv4 + AutoML",
			Pipeline: nprintPipeline("A02-nprint-tui", "tcp_udp_ipv4"),
		},
		{
			ID: "A03", Ref: "nprint3 [20]", Desc: "nPrint tcp+udp+ipv4+payload + AutoML",
			Pipeline: nprintPipeline("A03-nprint-payload", "tcp_udp_ipv4_payload"),
		},
		{
			ID: "A04", Ref: "nprint4 [20]", Desc: "nPrint tcp+icmp+ipv4 + AutoML",
			Pipeline: nprintPipeline("A04-nprint-icmp", "tcp_icmp_ipv4"),
		},
		{
			ID: "A05", Ref: "Smart Home IDS [11]", Desc: "PDML-style per-packet fields + random forest",
			Pipeline: &core.Pipeline{
				Name:        "A05-smarthome",
				Granularity: "packet",
				Ops: []core.OpSpec{
					op("field_extract", []string{core.InputName}, "pkts", map[string]any{
						"fields": []string{
							"len", "payload_len", "ttl", "ip_id", "ip_tos", "proto",
							"src_port", "dst_port", "tcp_flags", "tcp_window",
							"udp_len", "icmp_type", "icmp_code", "is_arp", "is_tcp",
							"is_udp", "is_icmp", "dns_qr", "dns_qd", "iat",
							"is_http", "http_is_req", "http_path_len", "http_body_len",
							"is_mqtt", "mqtt_type", "mqtt_topic_len",
						},
					}),
					op("model", nil, "clf", map[string]any{"model_type": "random_forest", "n_trees": 50}),
					op("train", []string{"clf", "pkts"}, "fit", nil),
				},
			},
		},
		{
			ID: "A06", Ref: "Kitsune [27]", Desc: "damped incremental stats + KitNET autoencoder ensemble",
			NoIPNeeded: true,
			Pipeline: &core.Pipeline{
				Name:        "A06-kitsune",
				Granularity: "packet",
				Ops: []core.OpSpec{
					op("kitsune_features", []string{core.InputName}, "feats", nil),
					op("model", nil, "clf", map[string]any{"model_type": "kitnet", "epochs": 2}),
					op("train", []string{"clf", "feats"}, "fit", nil),
				},
			},
		},
		{
			ID: "A07", Ref: "Efficient OCSVM [40]", Desc: "first-100-packet stats + one-class SVM",
			Pipeline: connFeaturePipeline("A07-ocsvm", firstNFeatures, "", "ocsvm", nil),
		},
		{
			ID: "A08", Ref: "Nystrom+GMM [40]", Desc: "first-100-packet stats + Nystrom features + GMM density",
			Pipeline: connFeaturePipeline("A08-nystrom-gmm", firstNFeatures, "", "nystrom_gmm", nil),
		},
		{
			ID: "A09", Ref: "Nystrom+OCSVM [40]", Desc: "first-100-packet stats + Nystrom features + one-class SVM",
			Pipeline: connFeaturePipeline("A09-nystrom-ocsvm", firstNFeatures, "", "nystrom_ocsvm", nil),
		},
		{
			ID: "A10", Ref: "smartdet [24]", Desc: "DoS-oriented uniflow features + random forest",
			Pipeline: &core.Pipeline{
				Name:        "A10-smartdet",
				Granularity: "uniflow",
				Ops: []core.OpSpec{
					op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "uniflow"}),
					op("flow_features", []string{"flows"}, "feats", map[string]any{"features": smartdetFeatures}),
					op("model", nil, "clf", map[string]any{"model_type": "random_forest", "n_trees": 50}),
					op("train", []string{"clf", "feats"}, "fit", nil),
				},
			},
		},
		{
			ID: "A11", Ref: "nokia [15]", Desc: "srcIP/dstIP flow features + autoencoder",
			Pipeline: &core.Pipeline{
				Name:        "A11-nokia",
				Granularity: "uniflow",
				Ops: []core.OpSpec{
					op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "uniflow"}),
					op("flow_features", []string{"flows"}, "feats", map[string]any{"features": []string{
						"duration", "pkt_count", "byte_count", "mean_len", "std_len",
						"mean_iat", "std_iat", "pps", "bps", "dst_port", "proto",
					}}),
					op("model", nil, "clf", map[string]any{"model_type": "autoencoder", "epochs": 15}),
					op("train", []string{"clf", "feats"}, "fit", nil),
				},
			},
		},
		{
			ID: "A12", Ref: "early detection [21]", Desc: "early-packet statistics + unsupervised autoencoder",
			Pipeline: connFeaturePipeline("A12-early", append([]string{
				"state_s0", "state_sf", "svc_http", "svc_telnet"}, firstNFeatures...),
				"", "autoencoder", map[string]any{"epochs": 15}),
		},
		{
			ID: "A13", Ref: "Bayesian [28]", Desc: "full per-flow discriminator catalogue + naive Bayes",
			Pipeline: connFeaturePipeline("A13-bayesian", bayesianFeatures, "", "gaussian_nb", nil),
		},
		{
			ID: "A14", Ref: "Zeek [13]", Desc: "Zeek conn.log features + random forest",
			Pipeline: connFeaturePipeline("A14-zeek", zeekFeatures, "", "random_forest", map[string]any{"n_trees": 50}),
		},
		{
			ID: "A15", Ref: "IIoT [41]", Desc: "SCADA-style time/length/bandwidth/jitter features + random forest",
			Pipeline: connFeaturePipeline("A15-iiot", iiotFeatures, "", "random_forest", map[string]any{"n_trees": 50}),
		},
	}
}

// modified builds the Lumen-guided algorithms of Fig. 6: combinations of
// modules from existing work with an improved preprocessing setup, found
// by the greedy search in Synthesize.
func modified() []Algorithm {
	// AM01: Zeek features ∪ smartdet features, normalized, decorrelated,
	// random forest.
	am01Feats := dedup(append(append([]string{}, zeekFeatures...), smartdetFeatures...))
	am01 := &core.Pipeline{
		Name:        "AM01-zeek-smartdet-rf",
		Granularity: "connection",
		Ops: []core.OpSpec{
			op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "connection"}),
			op("flow_features", []string{"flows"}, "feats", map[string]any{"features": am01Feats}),
			op("normalize", []string{"feats"}, "norm", map[string]any{"kind": "zscore"}),
			op("drop_correlated", []string{"norm"}, "dec", map[string]any{"threshold": 0.98}),
			op("model", nil, "clf", map[string]any{"model_type": "random_forest", "n_trees": 60}),
			op("train", []string{"clf", "dec"}, "fit", nil),
		},
	}
	// AM02: full feature catalogue + normalization + AutoML.
	am02 := &core.Pipeline{
		Name:        "AM02-catalogue-automl",
		Granularity: "connection",
		Ops: []core.OpSpec{
			op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "connection"}),
			op("flow_features", []string{"flows"}, "feats", nil),
			op("normalize", []string{"feats"}, "norm", map[string]any{"kind": "minmax"}),
			op("model", nil, "clf", map[string]any{"model_type": "automl"}),
			op("train", []string{"clf", "norm"}, "fit", nil),
		},
	}
	// AM03: IIoT ∪ first-N features + decorrelation + supervised ensemble.
	am03Feats := dedup(append(append([]string{}, iiotFeatures...), firstNFeatures...))
	am03 := &core.Pipeline{
		Name:        "AM03-iiot-firstn-ensemble",
		Granularity: "connection",
		Ops: []core.OpSpec{
			op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "connection"}),
			op("flow_features", []string{"flows"}, "feats", map[string]any{"features": am03Feats}),
			op("normalize", []string{"feats"}, "norm", map[string]any{"kind": "zscore"}),
			op("drop_correlated", []string{"norm"}, "dec", map[string]any{"threshold": 0.95}),
			op("model", nil, "clf", map[string]any{"model_type": "ensemble_nb_dt_rf_dnn"}),
			op("train", []string{"clf", "dec"}, "fit", nil),
		},
	}
	return []Algorithm{
		{ID: "AM01", Ref: "Lumen-guided", Desc: "Zeek+smartdet features, normalized+decorrelated, RF", Pipeline: am01},
		{ID: "AM02", Ref: "Lumen-guided", Desc: "full catalogue + minmax + AutoML", Pipeline: am02},
		{ID: "AM03", Ref: "Lumen-guided", Desc: "IIoT+firstN features, decorrelated, NB/DT/RF/DNN ensemble", Pipeline: am03},
	}
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
