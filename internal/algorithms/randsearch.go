package algorithms

import (
	"fmt"
	"sort"

	"lumen/internal/core"
	"lumen/internal/mlkit"
)

// RandomSynthOptions configures SynthesizeRandom.
type RandomSynthOptions struct {
	// Budget is the total number of candidate evaluations; 0 means 24.
	Budget int
	// Seed drives candidate sampling.
	Seed int64
	// Models to consider; nil means SynthModels().
	Models []string
}

// SynthesizeRandom is the paper's §6 "black-box optimization" direction:
// instead of the greedy neighbourhood walk of Synthesize, it samples
// random pipeline configurations (feature-module subsets × model ×
// preprocessing) and refines with successive halving — evaluate every
// candidate on a cheap proxy first (the caller's eval already embodies
// the benchmark), keep the top half, re-evaluate survivors, and return
// the overall best. With a noisy eval the second pass double-checks the
// leaders, which is the practical benefit over pure random search.
func SynthesizeRandom(eval func(p *core.Pipeline) float64, opts RandomSynthOptions) (*core.Pipeline, float64, error) {
	budget := opts.Budget
	if budget <= 0 {
		budget = 24
	}
	models := opts.Models
	if models == nil {
		models = SynthModels()
	}
	groups := FeatureGroups()
	groupNames := make([]string, 0, len(groups))
	for g := range groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)
	rng := mlkit.NewRNG(opts.Seed)

	type candidate struct {
		p     *core.Pipeline
		score float64
	}
	build := func() *core.Pipeline {
		// Sample a non-empty feature-module subset.
		var feats []string
		tag := ""
		for {
			feats = feats[:0]
			tag = ""
			for _, g := range groupNames {
				if rng.Float64() < 0.5 {
					feats = append(feats, groups[g]...)
					tag += g[:1]
				}
			}
			if len(feats) > 0 {
				break
			}
		}
		feats = dedup(feats)
		model := models[rng.Intn(len(models))]
		norm := []string{"zscore", "minmax"}[rng.Intn(2)]
		dec := rng.Float64() < 0.5
		ops := []core.OpSpec{
			op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "connection"}),
			op("flow_features", []string{"flows"}, "feats", map[string]any{"features": feats}),
			op("normalize", []string{"feats"}, "norm", map[string]any{"kind": norm}),
		}
		x := "norm"
		if dec {
			ops = append(ops, op("drop_correlated", []string{"norm"}, "dec", map[string]any{"threshold": 0.97}))
			x = "dec"
		}
		ops = append(ops,
			op("model", nil, "clf", map[string]any{"model_type": model}),
			op("train", []string{"clf", x}, "fit", nil),
		)
		return &core.Pipeline{
			Name:        fmt.Sprintf("rsynth-%s-%s-%s-dc%v", tag, model, norm, dec),
			Granularity: "connection",
			Ops:         ops,
		}
	}

	// Round 1: spend 2/3 of the budget on fresh samples.
	n1 := budget * 2 / 3
	if n1 < 2 {
		n1 = budget
	}
	cands := make([]candidate, 0, n1)
	for i := 0; i < n1; i++ {
		p := build()
		cands = append(cands, candidate{p, eval(p)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })

	// Round 2 (successive halving): re-evaluate the top half with the
	// remaining budget and average the two scores.
	remaining := budget - n1
	top := cands
	if len(top) > remaining && remaining > 0 {
		top = top[:remaining]
	}
	for i := range top {
		if remaining <= 0 {
			break
		}
		top[i].score = (top[i].score + eval(top[i].p)) / 2
		remaining--
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("algorithms: random synthesis evaluated no candidates")
	}
	return cands[0].p, cands[0].score, nil
}
