package algorithms

import (
	"fmt"
	"sort"

	"lumen/internal/core"
)

// FeatureGroups names the per-flow feature modules contributed by the
// ported algorithms — the building blocks the synthesis search combines
// (paper §5.4: "mixing features from existing algorithms").
func FeatureGroups() map[string][]string {
	return map[string][]string{
		"zeek":     zeekFeatures,
		"smartdet": smartdetFeatures,
		"iiot":     iiotFeatures,
		"firstn":   firstNFeatures,
	}
}

// SynthModels lists the supervised model types the search considers, with
// the preprocessing that typically helps each.
func SynthModels() []string {
	return []string{"random_forest", "decision_tree", "gaussian_nb", "automl", "ensemble_nb_dt_rf_dnn"}
}

// SynthOptions bounds the greedy search.
type SynthOptions struct {
	// MaxRounds of greedy improvement; 0 means 4.
	MaxRounds int
	// Models to consider; nil means SynthModels().
	Models []string
}

// Synthesize runs the paper's greedy brute-force search over feature
// modules × models × preprocessing. eval scores a candidate pipeline
// (higher is better — the benchmark suite supplies mean precision over
// its datasets). It returns the best pipeline found and its score.
func Synthesize(eval func(p *core.Pipeline) float64, opts SynthOptions) (*core.Pipeline, float64, error) {
	rounds := opts.MaxRounds
	if rounds == 0 {
		rounds = 4
	}
	models := opts.Models
	if models == nil {
		models = SynthModels()
	}
	groups := FeatureGroups()
	groupNames := make([]string, 0, len(groups))
	for g := range groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)

	build := func(sel map[string]bool, model string, decorrelate bool) *core.Pipeline {
		var feats []string
		var tag string
		for _, g := range groupNames {
			if sel[g] {
				feats = append(feats, groups[g]...)
				tag += g[:1]
			}
		}
		feats = dedup(feats)
		ops := []core.OpSpec{
			op("flow_assemble", []string{core.InputName}, "flows", map[string]any{"granularity": "connection"}),
			op("flow_features", []string{"flows"}, "feats", map[string]any{"features": feats}),
			op("normalize", []string{"feats"}, "norm", map[string]any{"kind": "zscore"}),
		}
		x := "norm"
		if decorrelate {
			ops = append(ops, op("drop_correlated", []string{"norm"}, "dec", map[string]any{"threshold": 0.97}))
			x = "dec"
		}
		ops = append(ops,
			op("model", nil, "clf", map[string]any{"model_type": model}),
			op("train", []string{"clf", x}, "fit", nil),
		)
		return &core.Pipeline{
			Name:        fmt.Sprintf("synth-%s-%s-dc%v", tag, model, decorrelate),
			Granularity: "connection",
			Ops:         ops,
		}
	}

	// Seed: best single feature group with the first model.
	bestSel := map[string]bool{}
	bestModel := models[0]
	bestDec := false
	bestScore := -1.0
	for _, g := range groupNames {
		sel := map[string]bool{g: true}
		p := build(sel, bestModel, false)
		if s := eval(p); s > bestScore {
			bestScore = s
			bestSel = sel
		}
	}
	if bestScore < 0 {
		return nil, 0, fmt.Errorf("algorithms: synthesis found no viable seed")
	}

	// Greedy rounds: try adding a group, switching model, toggling
	// decorrelation — accept the single best improvement each round.
	for r := 0; r < rounds; r++ {
		improved := false
		type cand struct {
			sel   map[string]bool
			model string
			dec   bool
		}
		var cands []cand
		for _, g := range groupNames {
			if !bestSel[g] {
				sel := cloneSet(bestSel)
				sel[g] = true
				cands = append(cands, cand{sel, bestModel, bestDec})
			}
		}
		for _, m := range models {
			if m != bestModel {
				cands = append(cands, cand{cloneSet(bestSel), m, bestDec})
			}
		}
		cands = append(cands, cand{cloneSet(bestSel), bestModel, !bestDec})
		for _, c := range cands {
			p := build(c.sel, c.model, c.dec)
			if s := eval(p); s > bestScore+1e-9 {
				bestScore, bestSel, bestModel, bestDec = s, c.sel, c.model, c.dec
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return build(bestSel, bestModel, bestDec), bestScore, nil
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
