// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation
// benches for the framework's design choices. Figure benches report the
// headline numbers of each figure as custom metrics, so `go test
// -bench=.` regenerates the paper's result shapes; cmd/lumenbench prints
// the full tables and heatmaps.
package lumen

import (
	"math"
	"testing"
	"time"

	"lumen/internal/algorithms"
	"lumen/internal/benchsuite"
	"lumen/internal/core"
	"lumen/internal/dataset"
	"lumen/internal/features"
	"lumen/internal/mlkit"
	"lumen/internal/netpkt"
	"lumen/internal/report"
)

// benchScale keeps figure benches tractable; cmd/lumenbench defaults to
// a larger scale for the full reproduction.
const benchScale = 0.25

func newSuite(b *testing.B, algs, dss []string) *benchsuite.Suite {
	b.Helper()
	s, err := benchsuite.New(benchsuite.Config{Scale: benchScale, Seed: 7, AlgIDs: algs, DatasetIDs: dss})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1 regenerates the literature survey table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if benchsuite.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1a regenerates the comparability analysis; the paper's
// point is that ~half the surveyed algorithms admit no direct comparison.
func BenchmarkFig1a(b *testing.B) {
	var zf float64
	for i := 0; i < b.N; i++ {
		_ = benchsuite.Fig1a()
		zf = benchsuite.Fig1aZeroFraction()
	}
	b.ReportMetric(zf*100, "zero-comparison-%")
}

// BenchmarkFig5 regenerates the per-attack precision heatmap from
// same-dataset runs of all 16 algorithms.
func BenchmarkFig5(b *testing.B) {
	var filled float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, nil, nil)
		s.RunSameDataset()
		h := s.Fig5()
		filled = 0
		total := 0
		for r := range h.RowNames {
			for c := range h.ColNames {
				total++
				if !math.IsNaN(h.Cells[r][c]) {
					filled++
				}
			}
		}
		filled /= float64(total)
	}
	b.ReportMetric(filled*100, "cells-filled-%")
}

// BenchmarkFig6 regenerates the improvement heatmap: merged-dataset
// training for A08/A09/A13/A14 plus the synthesized AM01–AM03.
func BenchmarkFig6(b *testing.B) {
	var meanAM float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, []string{"A08", "A09", "A13", "A14"}, dataset.ConnectionIDs())
		s.RunSameDataset()
		res, err := s.Fig6(0.10)
		if err != nil {
			b.Fatal(err)
		}
		meanAM = (res.MeanPrecision["AM01"] + res.MeanPrecision["AM02"] + res.MeanPrecision["AM03"]) / 3
	}
	b.ReportMetric(meanAM*100, "mean-AM-precision-%")
}

// BenchmarkFig7 regenerates the distance-from-best distributions
// (Observation 1: no single best algorithm).
func BenchmarkFig7(b *testing.B) {
	var universal float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, nil, nil)
		s.RunAll()
		rows := s.Fig7()
		universal = 0
		for _, r := range rows {
			_, _, _, _, max := report.Dist(r.PrecDiff).Summary()
			if max < 1e-9 { // an always-best algorithm
				universal++
			}
		}
	}
	b.ReportMetric(universal, "universally-best-algs")
}

// BenchmarkFig8 regenerates the same-dataset score distributions
// (Fig. 1b / Fig. 8).
func BenchmarkFig8(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, nil, nil)
		s.RunSameDataset()
		prec, _ := s.Fig8()
		var meds []float64
		for _, d := range prec {
			_, _, m, _, _ := d.Summary()
			meds = append(meds, m)
		}
		med = mlkit.Quantile(meds, 0.5)
	}
	b.ReportMetric(med*100, "median-same-precision-%")
}

// BenchmarkFig9 regenerates the cross-dataset distributions (Fig. 1c /
// Fig. 9) — the collapse relative to Fig. 8 is Observation 2.
func BenchmarkFig9(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, nil, nil)
		s.RunCrossDataset()
		prec, _ := s.Fig9()
		var meds []float64
		for _, d := range prec {
			_, _, m, _, _ := d.Summary()
			meds = append(meds, m)
		}
		med = mlkit.Quantile(meds, 0.5)
	}
	b.ReportMetric(med*100, "median-cross-precision-%")
}

// BenchmarkFig10 regenerates the train×test median matrices
// (Observation 3: asymmetry; the Torii dataset F5 is hard to reach).
func BenchmarkFig10(b *testing.B) {
	var f5RowMax, f5ColMean float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, nil, dataset.ConnectionIDs())
		s.RunAll()
		hp, _ := s.Fig10()
		f5RowMax, f5ColMean = 0, 0
		n := 0
		for _, tr := range dataset.ConnectionIDs() {
			if tr == "F5" {
				continue
			}
			if v := hp.Get("F5", tr); !math.IsNaN(v) && v > f5RowMax {
				f5RowMax = v // best precision any training set achieves ON F5
			}
			if v := hp.Get(tr, "F5"); !math.IsNaN(v) {
				f5ColMean += v // how a model trained on F5 does elsewhere
				n++
			}
		}
		if n > 0 {
			f5ColMean /= float64(n)
		}
	}
	b.ReportMetric(f5RowMax*100, "best-precision-on-F5-%")
	b.ReportMetric(f5ColMean*100, "train-on-F5-mean-%")
}

// BenchmarkObs2 reports how many algorithms drop below 20% precision on
// at least one dataset, same- vs cross-dataset.
func BenchmarkObs2(b *testing.B) {
	var sp, cp int
	for i := 0; i < b.N; i++ {
		s := newSuite(b, nil, nil)
		s.RunAll()
		sp, _, cp, _ = s.Obs2(0.2)
	}
	b.ReportMetric(float64(sp), "same-precision-drops")
	b.ReportMetric(float64(cp), "cross-precision-drops")
}

// BenchmarkObs5 reports the merged-training improvement of the Fig. 6
// rows over their same-dataset means.
func BenchmarkObs5(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, []string{"A08", "A09", "A13", "A14"}, dataset.ConnectionIDs())
		s.RunSameDataset()
		res, err := s.Fig6(0.10)
		if err != nil {
			b.Fatal(err)
		}
		best = math.Inf(-1)
		for _, d := range s.Obs5(res) {
			if d > best {
				best = d
			}
		}
	}
	b.ReportMetric(best*100, "best-merge-improvement-%")
}

// BenchmarkValidation regenerates the §5.2 correctness table.
func BenchmarkValidation(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := newSuite(b, []string{"A07", "A10", "A14"},
			[]string{"F0", "F1", "F2", "F4", "F5", "F6", "F7", "F8", "F9"})
		rows, err := s.Validate()
		if err != nil {
			b.Fatal(err)
		}
		gap = 0
		for _, r := range rows {
			gap += math.Abs(r.Measured - r.Reported)
		}
		gap /= float64(len(rows))
	}
	b.ReportMetric(gap*100, "mean-abs-gap-%")
}

// --- per-algorithm benches: training cost of representative pipelines ---

func benchAlgorithm(b *testing.B, id, ds string) {
	spec, ok := dataset.Get(ds)
	if !ok {
		b.Fatal("no dataset", ds)
	}
	full := spec.Generate(benchScale)
	train, test := benchsuite.InterleaveSplit(full)
	alg, ok := algorithms.Get(id)
	if !ok {
		b.Fatal("no algorithm", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(alg.Pipeline)
		eng.Seed = int64(i)
		if err := eng.Train(train); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Test(test); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgKitsune(b *testing.B)  { benchAlgorithm(b, "A06", "P1") }
func BenchmarkAlgNprint(b *testing.B)   { benchAlgorithm(b, "A02", "P0") }
func BenchmarkAlgZeekRF(b *testing.B)   { benchAlgorithm(b, "A14", "F1") }
func BenchmarkAlgOCSVM(b *testing.B)    { benchAlgorithm(b, "A07", "F4") }
func BenchmarkAlgSmartdet(b *testing.B) { benchAlgorithm(b, "A10", "F1") }

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationColumnar compares aggregating over a columnar frame
// against a row-of-maps layout, the justification for core.Frame.
func BenchmarkAblationColumnar(b *testing.B) {
	const n = 20000
	col := make([]float64, n)
	rows := make([]map[string]float64, n)
	for i := 0; i < n; i++ {
		col[i] = float64(i % 97)
		rows[i] = map[string]float64{"len": col[i], "ts": float64(i), "port": 80}
	}
	b.Run("columnar", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			var s float64
			for _, v := range col {
				s += v
			}
			sink = s
		}
		_ = sink
	})
	b.Run("row-maps", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			var s float64
			for _, r := range rows {
				s += r["len"]
			}
			sink = s
		}
		_ = sink
	})
}

// BenchmarkAblationSharedExtract compares one field_extract pass pulling
// five fields against five single-field passes — the paper's shared
// size+time extraction.
func BenchmarkAblationSharedExtract(b *testing.B) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(benchScale)
	p := func(fields []string) *core.Pipeline {
		return &core.Pipeline{
			Name: "extract", Granularity: "packet",
			Ops: []core.OpSpec{
				{Func: "field_extract", Input: []string{core.InputName}, Output: "f",
					Params: map[string]any{"fields": fields}},
				{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 2}},
				{Func: "train", Input: []string{"m", "f"}, Output: "t"},
			},
		}
	}
	all := []string{"ts", "len", "src_port", "dst_port", "ttl"}
	b.Run("one-pass-5-fields", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := core.NewEngine(p(all))
			if err := eng.Train(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("five-single-field-passes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range all {
				eng := core.NewEngine(p([]string{f}))
				if err := eng.Train(ds); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationParallelism compares the suite's worker-pool run
// (the Ray stand-in) against serial execution.
func BenchmarkAblationParallelism(b *testing.B) {
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			s, err := benchsuite.New(benchsuite.Config{
				Scale: benchScale, Seed: 7, Workers: workers,
				AlgIDs:     []string{"A13", "A14", "A15"},
				DatasetIDs: []string{"F1", "F4", "F6", "F9"},
			})
			if err != nil {
				b.Fatal(err)
			}
			s.RunAll()
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblationProfiling measures a multi-worker suite run with
// per-op allocation profiling off (the default — Engine.run performs no
// memory-stat reads at all) against profiling on. The seed code issued
// two stop-the-world runtime.ReadMemStats calls per op unconditionally,
// which serialized the whole worker pool; "profiling-off" here is the
// direct comparison point for that behaviour.
func BenchmarkAblationProfiling(b *testing.B) {
	run := func(b *testing.B, profile bool) {
		for i := 0; i < b.N; i++ {
			s, err := benchsuite.New(benchsuite.Config{
				Scale: benchScale, Seed: 7, Profile: profile,
				AlgIDs:     []string{"A13", "A14", "A15"},
				DatasetIDs: []string{"F1", "F4", "F6", "F9"},
			})
			if err != nil {
				b.Fatal(err)
			}
			s.RunAll()
			if profile && len(s.OpProfiles()) == 0 {
				b.Fatal("profiling on but no per-op profile aggregated")
			}
		}
	}
	b.Run("profiling-off", func(b *testing.B) { run(b, false) })
	b.Run("profiling-on", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDampedStats compares O(1) damped incremental stats
// (Kitsune's AfterImage) against recomputing a sliding window per packet.
func BenchmarkAblationDampedStats(b *testing.B) {
	const n = 5000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%251) + 0.5
	}
	b.Run("incremental", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			st := features.NewIncStat(0.1)
			for j, v := range vals {
				st.Insert(v, float64(j)*0.01)
				sink = st.Std()
			}
		}
		_ = sink
	})
	b.Run("window-recompute", func(b *testing.B) {
		const window = 256
		var sink float64
		for i := 0; i < b.N; i++ {
			for j := range vals {
				lo := j - window
				if lo < 0 {
					lo = 0
				}
				w := vals[lo : j+1]
				m := mlkit.Mean(w)
				var s float64
				for _, v := range w {
					s += (v - m) * (v - m)
				}
				sink = math.Sqrt(s / float64(len(w)))
			}
		}
		_ = sink
	})
}

// --- substrate micro-benches ---

func BenchmarkPacketDecode(b *testing.B) {
	spec, _ := dataset.Get("F1")
	ds := spec.Generate(0.2)
	raws := make([][]byte, len(ds.Packets))
	for i, p := range ds.Packets {
		raws[i] = p.Data
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		raw := raws[i%len(raws)]
		p := netpkt.Decode(raw, netpkt.LinkEthernet, time.Time{})
		if p == nil {
			b.Fatal("decode failed")
		}
		bytes += int64(len(raw))
	}
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkKitsuneFeatureExtraction(b *testing.B) {
	spec, _ := dataset.Get("P1")
	ds := spec.Generate(0.3)
	alg, _ := algorithms.Get("A06")
	// Only the feature op, not training: build a one-op prefix pipeline.
	p := &core.Pipeline{
		Name: "kitsune-feats", Granularity: "packet",
		Ops: []core.OpSpec{
			alg.Pipeline.Ops[0],
			{Func: "model", Output: "m", Params: map[string]any{"model_type": "decision_tree", "max_depth": 1}},
			{Func: "train", Input: []string{"m", alg.Pipeline.Ops[0].Output}, Output: "t"},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(p)
		if err := eng.Train(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestFit(b *testing.B) {
	rng := mlkit.NewRNG(1)
	const n, d = 2000, 20
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if row[0]+row[1] > 0 {
			y[i] = 1
		}
		X[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &mlkit.RandomForest{NTrees: 20, Seed: int64(i)}
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharedCache measures the suite with and without the
// shared intermediate-result cache — the paper's "intermediate results
// are shared across algorithms" optimization.
func BenchmarkAblationSharedCache(b *testing.B) {
	run := func(b *testing.B, noCache bool) {
		for i := 0; i < b.N; i++ {
			s, err := benchsuite.New(benchsuite.Config{
				Scale: benchScale, Seed: 7, NoCache: noCache,
				AlgIDs:     []string{"A07", "A08", "A09", "A13", "A14", "A15"},
				DatasetIDs: []string{"F1", "F4", "F6", "F9"},
			})
			if err != nil {
				b.Fatal(err)
			}
			s.RunAll()
			if !noCache {
				st := s.CacheStats()
				if st.Hits == 0 {
					b.Fatal("cache never hit")
				}
				if st.Misses != st.Entries+st.Evictions {
					b.Fatalf("cache computed %d keys but holds %d (+%d evicted): singleflight dedup broken",
						st.Misses, st.Entries, st.Evictions)
				}
			}
		}
	}
	b.Run("shared-cache", func(b *testing.B) { run(b, false) })
	b.Run("no-cache", func(b *testing.B) { run(b, true) })
}
